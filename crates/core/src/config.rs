use svc_mem::{CacheGeometry, L2Config, MemTiming};

/// Which of the paper's design points a configuration corresponds to, when
/// it matches one exactly. Mostly used for labelling experiment output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SvcDesign {
    /// §3.2: minimal additions to an SMP (V/S/L + VOL pointer).
    Base,
    /// §3.4: efficient commits (C and T bits), assumes squashes are rare.
    Ec,
    /// §3.5: efficient commits and squashes (adds the A bit).
    Ecs,
    /// §3.6: ECS plus snarfing (hit-rate optimizations).
    Hr,
    /// §3.7: HR plus realistic (multi-word, sub-blocked) lines.
    Rl,
    /// §3.8: RL plus the hybrid update–invalidate protocol.
    Final,
}

impl core::fmt::Display for SvcDesign {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            SvcDesign::Base => "base",
            SvcDesign::Ec => "EC",
            SvcDesign::Ecs => "ECS",
            SvcDesign::Hr => "HR",
            SvcDesign::Rl => "RL",
            SvcDesign::Final => "final",
        };
        f.write_str(s)
    }
}

/// Configuration of an [`SvcSystem`](crate::SvcSystem).
///
/// The named constructors reproduce the paper's design progression
/// (§3.2–§3.8); individual feature flags can also be toggled for ablation
/// studies. See the crate docs for the preset table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SvcConfig {
    /// Number of processing units (= private caches).
    pub num_pus: usize,
    /// Geometry of each private cache.
    pub geometry: CacheGeometry,
    /// Latency parameters (§4.2).
    pub timing: MemTiming,
    /// EC (§3.4): commit by flash-setting the C bit, write back lazily.
    /// When `false`, commit flushes every dirty line immediately and
    /// invalidates the whole cache (the base design's burst).
    pub lazy_commit: bool,
    /// EC (§3.4.3): maintain the T bit and let loads reuse non-stale
    /// passive-clean copies without a bus request.
    pub stale_bit: bool,
    /// ECS (§3.5.1): maintain the A bit and retain architectural copies
    /// across task squashes.
    pub arch_bit: bool,
    /// HR (§3.6): caches snarf compatible versions off the bus.
    pub snarfing: bool,
    /// Final (§3.8): hybrid update–invalidate — non-violated copies within
    /// a store's invalidation range are updated in place instead of
    /// invalidated.
    pub hybrid_update: bool,
    /// With [`hybrid_update`](Self::hybrid_update), at most this many
    /// copies are updated per store; any further range copies are
    /// invalidated (the "dynamic selection" knob of §3.8 — updating close
    /// consumers buys communication latency, invalidating distant ones
    /// saves bus data traffic).
    pub update_limit: usize,
    /// §3.8.1's "further optimization": retain a passive-dirty line that a
    /// BusRead flushed, as a passive-clean architectural copy, instead of
    /// invalidating it — fewer refetches at the cost of more VOL
    /// book-keeping. Off by default, as in the paper's final design.
    pub retain_flushed: bool,
    /// MSHR entries per cache (§4.2: 8 for the SVC).
    pub mshr_entries: usize,
    /// Accesses combinable per MSHR (§4.2: 4 for the SVC).
    pub mshr_combine: usize,
    /// Writeback buffer entries per cache (§4.2: 8 for the SVC).
    pub wb_entries: usize,
    /// Optional shared L2 between the snooping bus and main memory — an
    /// extension beyond the paper's flat 10-cycle next level (see the
    /// `l2` ablation). `None` reproduces the paper.
    pub l2: Option<L2Config>,
}

impl SvcConfig {
    /// The geometry of the paper's SVC experiments: per-PU 4-way caches
    /// with 16-byte (4-word) lines and word-granularity versioning blocks.
    /// `kb_per_cache` selects 8 or 16 (or any power-of-two) KB per cache.
    ///
    /// # Panics
    ///
    /// Panics if the size does not yield a power-of-two set count.
    pub fn paper_geometry(kb_per_cache: usize) -> CacheGeometry {
        // 4-byte words, 4-word (16-byte) lines, 4-way.
        let lines = kb_per_cache * 1024 / 16;
        let sets = lines / 4;
        CacheGeometry::new(sets, 4, 4, 1)
    }

    fn with_flags(
        num_pus: usize,
        geometry: CacheGeometry,
        lazy_commit: bool,
        stale_bit: bool,
        arch_bit: bool,
        snarfing: bool,
        hybrid_update: bool,
    ) -> SvcConfig {
        SvcConfig {
            num_pus,
            geometry,
            timing: MemTiming::PAPER,
            lazy_commit,
            stale_bit,
            arch_bit,
            snarfing,
            hybrid_update,
            update_limit: usize::MAX,
            retain_flushed: false,
            mshr_entries: 8,
            mshr_combine: 4,
            wb_entries: 8,
            l2: None,
        }
    }

    /// §3.2 base design: one-word lines, flush-on-commit,
    /// invalidate-all-on-squash.
    pub fn base(num_pus: usize) -> SvcConfig {
        SvcConfig::with_flags(
            num_pus,
            CacheGeometry::word_lines(512, 4),
            false,
            false,
            false,
            false,
            false,
        )
    }

    /// §3.4 EC design: base + lazy commits (C bit) + stale-copy reuse
    /// (T bit). Still one-word lines.
    pub fn ec(num_pus: usize) -> SvcConfig {
        SvcConfig::with_flags(
            num_pus,
            CacheGeometry::word_lines(512, 4),
            true,
            true,
            false,
            false,
            false,
        )
    }

    /// §3.5 ECS design: EC + architectural-copy retention across squashes
    /// (A bit).
    pub fn ecs(num_pus: usize) -> SvcConfig {
        SvcConfig::with_flags(
            num_pus,
            CacheGeometry::word_lines(512, 4),
            true,
            true,
            true,
            false,
            false,
        )
    }

    /// §3.6 HR design: ECS + snarfing.
    pub fn hr(num_pus: usize) -> SvcConfig {
        SvcConfig::with_flags(
            num_pus,
            CacheGeometry::word_lines(512, 4),
            true,
            true,
            true,
            true,
            false,
        )
    }

    /// §3.7 RL design: HR with realistic multi-word lines (the paper's
    /// 8KB-per-cache geometry) and per-sub-block L/S bits.
    pub fn rl(num_pus: usize) -> SvcConfig {
        SvcConfig::with_flags(
            num_pus,
            SvcConfig::paper_geometry(8),
            true,
            true,
            true,
            true,
            false,
        )
    }

    /// §3.8 final design: RL + the hybrid update–invalidate protocol.
    pub fn final_design(num_pus: usize) -> SvcConfig {
        SvcConfig::with_flags(
            num_pus,
            SvcConfig::paper_geometry(8),
            true,
            true,
            true,
            true,
            true,
        )
    }

    /// A small geometry for unit tests: 4 sets, 2 ways, 4-word lines,
    /// 2-word sub-blocks.
    pub fn small_for_tests(num_pus: usize) -> SvcConfig {
        let mut c = SvcConfig::final_design(num_pus);
        c.geometry = CacheGeometry::new(4, 2, 4, 2);
        c
    }

    /// The design point this configuration matches, if any.
    pub fn design(&self) -> Option<SvcDesign> {
        let flags = (
            self.lazy_commit,
            self.stale_bit,
            self.arch_bit,
            self.snarfing,
            self.hybrid_update,
        );
        let word_lines = self.geometry.words_per_line() == 1;
        match flags {
            (false, false, false, false, false) if word_lines => Some(SvcDesign::Base),
            (true, true, false, false, false) if word_lines => Some(SvcDesign::Ec),
            (true, true, true, false, false) if word_lines => Some(SvcDesign::Ecs),
            (true, true, true, true, false) if word_lines => Some(SvcDesign::Hr),
            (true, true, true, true, false) => Some(SvcDesign::Rl),
            (true, true, true, true, true) if !word_lines => Some(SvcDesign::Final),
            _ => None,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if a flag requires another that is disabled (e.g. the A bit
    /// without lazy commits) or if `num_pus` is zero.
    pub fn validate(&self) {
        assert!(self.num_pus > 0, "need at least one PU");
        assert!(
            !self.stale_bit || self.lazy_commit,
            "the T bit only matters with lazy commits"
        );
        assert!(
            !self.arch_bit || self.lazy_commit,
            "the A bit builds on the EC design"
        );
        assert!(self.mshr_entries > 0 && self.mshr_combine > 0 && self.wb_entries > 0);
        assert!(
            self.geometry.subblocks_per_line() <= 64,
            "SubMask supports at most 64 sub-blocks"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_designs() {
        assert_eq!(SvcConfig::base(4).design(), Some(SvcDesign::Base));
        assert_eq!(SvcConfig::ec(4).design(), Some(SvcDesign::Ec));
        assert_eq!(SvcConfig::ecs(4).design(), Some(SvcDesign::Ecs));
        assert_eq!(SvcConfig::hr(4).design(), Some(SvcDesign::Hr));
        assert_eq!(SvcConfig::rl(4).design(), Some(SvcDesign::Rl));
        assert_eq!(SvcConfig::final_design(4).design(), Some(SvcDesign::Final));
    }

    #[test]
    fn presets_validate() {
        for cfg in [
            SvcConfig::base(4),
            SvcConfig::ec(4),
            SvcConfig::ecs(4),
            SvcConfig::hr(4),
            SvcConfig::rl(4),
            SvcConfig::final_design(4),
            SvcConfig::small_for_tests(4),
        ] {
            cfg.validate();
        }
    }

    #[test]
    fn paper_geometry_sizes() {
        let g8 = SvcConfig::paper_geometry(8);
        // 8KB = 512 lines of 16 bytes; 4-way => 128 sets.
        assert_eq!(g8.sets(), 128);
        assert_eq!(g8.ways(), 4);
        assert_eq!(g8.words_per_line(), 4);
        assert_eq!(g8.capacity_words() * 4, 8 * 1024);
        let g16 = SvcConfig::paper_geometry(16);
        assert_eq!(g16.sets(), 256);
    }

    #[test]
    #[should_panic(expected = "A bit builds on the EC design")]
    fn inconsistent_flags_panic() {
        let mut c = SvcConfig::base(4);
        c.arch_bit = true;
        c.validate();
    }

    #[test]
    fn custom_config_has_no_design_label() {
        let mut c = SvcConfig::final_design(4);
        c.snarfing = false;
        assert_eq!(c.design(), None);
    }

    #[test]
    fn design_display() {
        assert_eq!(format!("{}", SvcDesign::Final), "final");
        assert_eq!(format!("{}", SvcDesign::Base), "base");
    }
}
