//! State inspection: render the caches' view of a line the way the
//! paper's figures do (one box per PU with the set bits, plus the VOL),
//! and summarize whole-cache occupancy. Debugging aids for protocol work;
//! everything here is read-only.

use svc_types::{Addr, PuId};

use crate::line::LineState;
use crate::system::SvcSystem;
use crate::vol::order_vol;

/// Occupancy of one cache broken down by line state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateCensus {
    /// Lines with no valid sub-block (free slots).
    pub invalid: usize,
    /// Uncommitted lines without store data.
    pub active_clean: usize,
    /// Uncommitted speculative versions.
    pub active_dirty: usize,
    /// Committed lines with nothing left to write back.
    pub passive_clean: usize,
    /// Committed versions awaiting lazy writeback.
    pub passive_dirty: usize,
}

impl StateCensus {
    /// Total slots (the cache's line capacity).
    pub fn total(&self) -> usize {
        self.invalid
            + self.active_clean
            + self.active_dirty
            + self.passive_clean
            + self.passive_dirty
    }

    /// Valid lines (everything but free slots).
    pub fn valid(&self) -> usize {
        self.total() - self.invalid
    }
}

impl SvcSystem {
    /// Counts `pu`'s lines by state (paper Figure 18's five states).
    pub fn state_census(&self, pu: PuId) -> StateCensus {
        let mut c = StateCensus::default();
        for state in self.line_states_of(pu) {
            match state {
                LineState::Invalid => c.invalid += 1,
                LineState::ActiveClean => c.active_clean += 1,
                LineState::ActiveDirty => c.active_dirty += 1,
                LineState::PassiveClean => c.passive_clean += 1,
                LineState::PassiveDirty => c.passive_dirty += 1,
            }
        }
        c
    }

    /// Renders every cache's copy of the line containing `addr` in the
    /// style of the paper's figures: per-PU boxes with the bits that are
    /// set, followed by the reconstructed Version Ordering List.
    ///
    /// ```text
    /// line L0x10 (addr 0x40):
    ///   PU0 [T3]  AD  V=0b1 S=0b1 L=0b0  C- T- A- X-  -> PU1  data[0]=0x2a
    ///   PU1 [T4]  AC  V=0b1 S=0b0 L=0b1  C- T- A- X-  -> -    data[0]=0x2a
    ///   VOL: PU0 -> PU1
    /// ```
    pub fn dump_line(&self, addr: Addr) -> String {
        let g = self.config().geometry;
        let line = g.line_of(addr);
        let snaps = self.snapshots_of(line);
        let mut out = format!("line {line} (addr {addr}):\n");
        for s in &snaps {
            let task = match s.task {
                Some(t) => format!("{t}"),
                None => "-".to_string(),
            };
            if !s.is_valid() {
                out.push_str(&format!("  {} [{}]  I\n", s.pu, task));
                continue;
            }
            let state = match (s.committed, s.store.is_empty()) {
                (false, true) => "AC",
                (false, false) => "AD",
                (true, true) => "PC",
                (true, false) => "PD",
            };
            let next = match s.next {
                Some(q) => format!("{q}"),
                None => "-".to_string(),
            };
            let word0 = self.peek_word(s.pu, line.first_word(g.words_per_line()));
            out.push_str(&format!(
                "  {} [{}]  {}  V={:#b} S={:#b} L={:#b}  C{} T{} A{}  -> {}  data[0]={}\n",
                s.pu,
                task,
                state,
                s.valid,
                s.store,
                s.load,
                if s.committed { "+" } else { "-" },
                if s.stale { "+" } else { "-" },
                if s.arch { "+" } else { "-" },
                next,
                word0.map_or("?".to_string(), |w| format!("{w}")),
            ));
        }
        let vol = order_vol(&snaps);
        out.push_str("  VOL: ");
        if vol.is_empty() {
            out.push_str("(empty)");
        } else {
            let parts: Vec<String> = vol.iter().map(|p| format!("{p}")).collect();
            out.push_str(&parts.join(" -> "));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use svc_types::{Cycle, TaskId, VersionedMemory, Word};

    use crate::SvcConfig;

    use super::*;

    #[test]
    fn census_tracks_state_transitions() {
        let mut svc = SvcSystem::new(SvcConfig::ecs(2));
        svc.assign(PuId(0), TaskId(0));
        let empty = svc.state_census(PuId(0));
        assert_eq!(empty.valid(), 0);
        assert_eq!(empty.total(), 2048); // 512 sets x 4 ways, word lines

        svc.store(PuId(0), Addr(0), Word(1), Cycle(0)).unwrap();
        svc.load(PuId(0), Addr(8), Cycle(1)).unwrap();
        let c = svc.state_census(PuId(0));
        assert_eq!(c.active_dirty, 1);
        assert_eq!(c.active_clean, 1);

        svc.commit(PuId(0), Cycle(10));
        let c = svc.state_census(PuId(0));
        assert_eq!(c.passive_dirty, 1);
        assert_eq!(c.passive_clean, 1);
        assert_eq!(c.valid(), 2);
    }

    #[test]
    fn dump_line_shows_boxes_and_vol() {
        let mut svc = SvcSystem::new(SvcConfig::ecs(4));
        svc.assign(PuId(0), TaskId(0));
        svc.assign(PuId(1), TaskId(1));
        svc.store(PuId(0), Addr(4), Word(0x2A), Cycle(0)).unwrap();
        svc.load(PuId(1), Addr(4), Cycle(5)).unwrap();
        let dump = svc.dump_line(Addr(4));
        assert!(dump.contains("AD"), "producer's version: {dump}");
        assert!(dump.contains("AC"), "consumer's copy: {dump}");
        assert!(dump.contains("VOL: PU0 -> PU1"), "{dump}");
        assert!(dump.contains("0x2a"), "{dump}");
        // Uninvolved PUs show as invalid.
        assert!(dump.contains("PU2 [-]  I"), "{dump}");
    }

    #[test]
    fn dump_line_for_untouched_address() {
        let svc = SvcSystem::new(SvcConfig::ecs(2));
        let dump = svc.dump_line(Addr(123));
        assert!(dump.contains("VOL: (empty)"), "{dump}");
    }
}
