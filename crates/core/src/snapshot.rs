use svc_types::{PuId, TaskId};

use crate::mask::SubMask;

/// What the Version Control Logic sees of one cache's copy of the requested
/// line when a bus request is snooped (paper §3.2: "the states of the
/// requested line in each L1 cache are supplied to the VCL").
///
/// Snapshots carry state bits and the VOL pointer, not data; data movement
/// is performed by the system when it applies the VCL's plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineSnapshot {
    /// The cache/PU holding this copy.
    pub pu: PuId,
    /// The task currently assigned to that PU, if any. Uncommitted lines
    /// belong to this task; committed lines may predate it.
    pub task: Option<TaskId>,
    /// Per-sub-block valid bits.
    pub valid: SubMask,
    /// Per-sub-block store (S) bits.
    pub store: SubMask,
    /// Per-sub-block load (L) bits.
    pub load: SubMask,
    /// The commit (C) bit.
    pub committed: bool,
    /// The stale (T) bit.
    pub stale: bool,
    /// The architectural (A) bit.
    pub arch: bool,
    /// The VOL pointer.
    pub next: Option<PuId>,
}

impl LineSnapshot {
    /// Whether this snapshot holds any valid data.
    pub fn is_valid(&self) -> bool {
        !self.valid.is_empty()
    }

    /// Whether this copy is a *version* (has store data) rather than a pure
    /// copy.
    pub fn is_version(&self) -> bool {
        !self.store.is_empty()
    }

    /// The task this line's VOL position is keyed by, for uncommitted
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if the line is uncommitted but the PU has no task — the
    /// system maintains the invariant that every uncommitted valid line
    /// belongs to its PU's current task.
    pub fn ordering_task(&self) -> Option<TaskId> {
        if self.committed {
            None
        } else {
            Some(
                self.task
                    .expect("uncommitted valid line on a PU with no task"),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(committed: bool, task: Option<TaskId>) -> LineSnapshot {
        LineSnapshot {
            pu: PuId(0),
            task,
            valid: SubMask::all(1),
            store: SubMask::EMPTY,
            load: SubMask::EMPTY,
            committed,
            stale: false,
            arch: false,
            next: None,
        }
    }

    #[test]
    fn version_vs_copy() {
        let mut s = snap(false, Some(TaskId(1)));
        assert!(!s.is_version());
        s.store = SubMask::single(0);
        assert!(s.is_version());
        assert!(s.is_valid());
    }

    #[test]
    fn ordering_task_rules() {
        assert_eq!(snap(true, None).ordering_task(), None);
        assert_eq!(
            snap(false, Some(TaskId(7))).ordering_task(),
            Some(TaskId(7))
        );
    }

    #[test]
    #[should_panic(expected = "no task")]
    fn uncommitted_without_task_panics() {
        snap(false, None).ordering_task();
    }
}
