//! Version Ordering List reconstruction.
//!
//! The VOL of a line is the program-order list of its copies and versions
//! (paper §2.3). It is stored distributed, as one pointer per line; on each
//! bus request the VCL reassembles it from the snooped snapshots. Squashes
//! invalidate the (uncommitted) tail of the list and may leave a dangling
//! pointer in the last surviving entry (§3.5, Figure 17); reconstruction
//! here simply ignores pointers to caches that no longer hold the line,
//! which *is* the repair — the system rewrites all pointers from the
//! reconstructed order when it applies the plan.

use smallvec::SmallVec;
use svc_sim::trace::VolEntry;
use svc_types::PuId;

use crate::snapshot::LineSnapshot;

/// A reconstructed VOL order: inline up to 8 members (one per PU in
/// every paper configuration), heap beyond that.
pub type VolOrder = SmallVec<PuId, 8>;

/// The reconstructed VOL as trace entries (oldest first): each member's
/// PU, current task, and whether it is a *version* (holds store data)
/// rather than a pure copy. Feeds `vol`-category trace events.
pub fn vol_trace_entries(snapshots: &[LineSnapshot]) -> Vec<VolEntry> {
    order_vol(snapshots)
        .into_iter()
        .map(|q| {
            let s = snapshots
                .iter()
                .find(|s| s.pu == q)
                .expect("VOL members come from the snapshots");
            VolEntry {
                pu: q,
                task: s.task,
                version: !s.store.is_empty(),
            }
        })
        .collect()
}

/// Reconstructs the VOL (oldest first) from the snooped line snapshots.
///
/// The order is: all *committed* copies/versions first, in their stored
/// pointer-chain order (their creating tasks are gone, so the chain is the
/// only record of their relative age); then all *uncommitted* lines,
/// ordered by the task currently on their PU — valid because an
/// uncommitted line always belongs to its PU's current task.
///
/// Invalid snapshots are skipped. Dangling pointers (to PUs whose line was
/// squash-invalidated) are ignored.
///
/// # Panics
///
/// Panics if an uncommitted valid line sits on a PU with no assigned task
/// (a system invariant violation).
pub fn order_vol(snapshots: &[LineSnapshot]) -> VolOrder {
    // --- Committed prefix: follow the pointer chain. ---
    let committed: SmallVec<&LineSnapshot, 8> = snapshots
        .iter()
        .filter(|s| s.is_valid() && s.committed)
        .collect();
    let mut chain: VolOrder = SmallVec::new();
    if !committed.is_empty() {
        let is_committed_member = |pu: PuId| committed.iter().any(|s| s.pu == pu);
        // Heads: committed members not pointed to by any other committed
        // member.
        let mut heads: SmallVec<&LineSnapshot, 8> = committed
            .iter()
            .copied()
            .filter(|s| {
                !committed
                    .iter()
                    .any(|o| o.pu != s.pu && o.next == Some(s.pu))
            })
            .collect();
        // Normally exactly one head; multiple fragments can only arise
        // from repaired state. Process heads deterministically by PU index.
        heads.sort_unstable_by_key(|s| s.pu.index());
        let lookup = |pu: PuId| committed.iter().copied().find(|s| s.pu == pu);
        for head in &heads {
            let mut cur = Some(head.pu);
            while let Some(pu) = cur {
                if !is_committed_member(pu) {
                    break; // pointer leads out of the committed set
                }
                // A PU appears in the chain at most once, so membership
                // doubles as the cycle protection (corrupt state).
                if chain.contains(&pu) {
                    break;
                }
                chain.push(pu);
                cur = lookup(pu).and_then(|s| s.next);
            }
        }
        // Any committed member the chains missed (fully corrupt pointers):
        // append deterministically.
        for s in &committed {
            if !chain.contains(&s.pu) {
                chain.push(s.pu);
            }
        }
    }

    // --- Uncommitted suffix: order by current task. ---
    let mut uncommitted: SmallVec<&LineSnapshot, 8> = snapshots
        .iter()
        .filter(|s| s.is_valid() && !s.committed)
        .collect();
    uncommitted.sort_by_key(|s| s.ordering_task().expect("uncommitted lines have tasks"));
    chain.extend(uncommitted.iter().map(|s| s.pu));
    chain
}

#[cfg(test)]
mod tests {
    use svc_types::TaskId;

    use super::*;
    use crate::mask::SubMask;

    fn snap(pu: usize, task: Option<u64>, committed: bool, next: Option<usize>) -> LineSnapshot {
        LineSnapshot {
            pu: PuId(pu),
            task: task.map(TaskId),
            valid: SubMask::all(1),
            store: SubMask::EMPTY,
            load: SubMask::EMPTY,
            committed,
            stale: false,
            arch: false,
            next: next.map(PuId),
        }
    }

    fn invalid(pu: usize) -> LineSnapshot {
        LineSnapshot {
            valid: SubMask::EMPTY,
            ..snap(pu, None, false, None)
        }
    }

    #[test]
    fn uncommitted_sorted_by_task() {
        // Paper Figure 8: X/0, Z/1, W/2 (requestor), Y/3 — all uncommitted.
        let snaps = vec![
            snap(0, Some(0), false, Some(2)), // X/0 -> Z
            snap(1, Some(3), false, None),    // Y/3
            snap(2, Some(1), false, Some(1)), // Z/1 -> Y
            invalid(3),                       // W: no copy yet
        ];
        assert_eq!(order_vol(&snaps), vec![PuId(0), PuId(2), PuId(1)]);
    }

    #[test]
    fn committed_prefix_uses_pointer_chain() {
        // Paper Figure 12: X holds committed version 0, Z holds committed
        // version 1 (X -> Z), while X and Z now run tasks 5 and 4. Y/3 is
        // uncommitted. Chain order must be X, Z (creation order), NOT the
        // current-task order (which would put Z/4 before X/5).
        let snaps = vec![
            snap(0, Some(5), true, Some(2)), // X: committed v0 -> Z
            snap(1, Some(3), false, None),   // Y/3: uncommitted v3
            snap(2, Some(4), true, Some(1)), // Z: committed v1 -> Y
            invalid(3),
        ];
        assert_eq!(order_vol(&snaps), vec![PuId(0), PuId(2), PuId(1)]);
    }

    #[test]
    fn dangling_pointer_after_squash_is_repaired() {
        // Paper Figure 17: versions 0 (committed, X), 1 (Z), 3 (Y). Tasks 3
        // and 4 squash; Y's line is invalidated, leaving Z's pointer
        // dangling. Reconstruction must yield X, Z.
        let snaps = vec![
            snap(0, None, true, Some(2)),     // X: committed v0 -> Z
            invalid(1),                       // Y: squashed
            snap(2, Some(1), false, Some(1)), // Z/1 -> Y (dangling)
            snap(3, Some(2), false, None),    // W/2 has a copy
        ];
        assert_eq!(order_vol(&snaps), vec![PuId(0), PuId(2), PuId(3)]);
    }

    #[test]
    fn empty_and_single() {
        assert!(order_vol(&[]).is_empty());
        assert!(order_vol(&[invalid(0), invalid(1)]).is_empty());
        let one = vec![snap(2, Some(9), false, None)];
        assert_eq!(order_vol(&one), vec![PuId(2)]);
    }

    #[test]
    fn corrupt_committed_cycle_terminates() {
        // Two committed lines pointing at each other must not loop forever.
        let snaps = vec![snap(0, None, true, Some(1)), snap(1, None, true, Some(0))];
        let vol = order_vol(&snaps);
        assert_eq!(vol.len(), 2);
        assert!(vol.contains(&PuId(0)) && vol.contains(&PuId(1)));
    }

    #[test]
    fn committed_always_precede_uncommitted() {
        let snaps = vec![
            snap(0, Some(9), false, None), // uncommitted, young task
            snap(1, Some(10), true, None), // committed on PU running task 10
        ];
        assert_eq!(order_vol(&snaps), vec![PuId(1), PuId(0)]);
    }
}
