//! An idealised speculative-versioning memory, used as the correctness
//! oracle in differential tests and as an upper-bound ("perfect memory")
//! configuration in experiments.
//!
//! `IdealMemory` keeps, per address, an explicit ordered map from task id
//! to the version that task created — the abstract object the SVC and the
//! ARB both approximate in hardware. Every access completes in
//! `hit_cycles`; there is no bus, no capacity, no replacement. Violation
//! detection is exact: a store by task *t* squashes the oldest younger
//! task that already loaded the location without an intervening version.

use std::collections::{BTreeMap, HashMap};

use svc_types::{
    AccessError, Addr, Cycle, DataSource, LoadOutcome, MemStats, ModelCheckable, PuId, StateHasher,
    StoreOutcome, TaskAssignments, TaskId, VersionedMemory, Violation, Word,
};

/// The oracle versioned memory. See the module docs.
///
/// # Example
///
/// ```
/// use svc::IdealMemory;
/// use svc_types::{Addr, Cycle, PuId, TaskId, VersionedMemory, Word};
///
/// let mut m = IdealMemory::new(2, 1);
/// m.assign(PuId(0), TaskId(0));
/// m.assign(PuId(1), TaskId(1));
/// // Task 1 loads before task 0 stores: a violation is detected when the
/// // store arrives.
/// let out = m.load(PuId(1), Addr(4), Cycle(0))?;
/// assert_eq!(out.value, Word::ZERO);
/// let st = m.store(PuId(0), Addr(4), Word(7), Cycle(1))?;
/// assert_eq!(st.violation.unwrap().victim, TaskId(1));
/// # Ok::<(), svc_types::AccessError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IdealMemory {
    hit_cycles: u64,
    assignments: TaskAssignments,
    /// Speculative versions: addr -> (creating task -> value).
    versions: HashMap<Addr, BTreeMap<TaskId, Word>>,
    /// Use-before-define records: addr -> tasks that loaded before storing.
    exposed_loads: HashMap<Addr, Vec<TaskId>>,
    /// Architectural (committed) state.
    memory: HashMap<Addr, Word>,
    stats: MemStats,
}

impl IdealMemory {
    /// Creates an oracle for `num_pus` processing units with the given hit
    /// latency (the paper's ideal configuration uses 1 cycle).
    ///
    /// # Panics
    ///
    /// Panics if `num_pus` or `hit_cycles` is zero.
    pub fn new(num_pus: usize, hit_cycles: u64) -> IdealMemory {
        assert!(num_pus > 0 && hit_cycles > 0);
        IdealMemory {
            hit_cycles,
            assignments: TaskAssignments::new(num_pus),
            versions: HashMap::new(),
            exposed_loads: HashMap::new(),
            memory: HashMap::new(),
            stats: MemStats::default(),
        }
    }

    fn task_of(&self, pu: PuId) -> Result<TaskId, AccessError> {
        self.assignments.task_of(pu).ok_or(AccessError::NoTask(pu))
    }

    /// The value the closest previous version (or architectural memory)
    /// holds for `addr` as seen by `task`. A task sees its own version.
    fn visible(&self, addr: Addr, task: TaskId) -> Word {
        if let Some(vs) = self.versions.get(&addr) {
            if let Some((_, v)) = vs.range(..=task).next_back() {
                return *v;
            }
        }
        self.memory.get(&addr).copied().unwrap_or(Word::ZERO)
    }
}

impl VersionedMemory for IdealMemory {
    fn num_pus(&self) -> usize {
        self.assignments.num_pus()
    }

    fn assign(&mut self, pu: PuId, task: TaskId) {
        self.assignments.assign(pu, task);
    }

    fn load(&mut self, pu: PuId, addr: Addr, now: Cycle) -> Result<LoadOutcome, AccessError> {
        let task = self.task_of(pu)?;
        self.stats.loads += 1;
        self.stats.local_hits += 1;
        let value = self.visible(addr, task);
        let own_version = self
            .versions
            .get(&addr)
            .is_some_and(|vs| vs.contains_key(&task));
        if !own_version {
            let recs = self.exposed_loads.entry(addr).or_default();
            if !recs.contains(&task) {
                recs.push(task);
            }
        }
        Ok(LoadOutcome {
            value,
            done_at: now + self.hit_cycles,
            source: DataSource::LocalHit,
        })
    }

    fn store(
        &mut self,
        pu: PuId,
        addr: Addr,
        value: Word,
        now: Cycle,
    ) -> Result<StoreOutcome, AccessError> {
        let task = self.task_of(pu)?;
        self.stats.stores += 1;
        self.stats.local_hits += 1;
        // A younger task that loaded this address is violated unless a
        // version from a task strictly between the storer and the loader
        // already shielded it. The loader's own later store does NOT
        // shield its earlier exposed load (the L bit stays set, §3.2).
        let shield = |loader: TaskId, vs: &BTreeMap<TaskId, Word>| {
            vs.range(TaskId(task.0 + 1)..loader).next().is_some()
        };
        let empty = BTreeMap::new();
        let vs = self.versions.get(&addr).unwrap_or(&empty);
        let victim = self
            .exposed_loads
            .get(&addr)
            .into_iter()
            .flatten()
            .filter(|&&loader| task.is_older_than(loader) && !shield(loader, vs))
            .min()
            .copied();
        self.versions.entry(addr).or_default().insert(task, value);
        if victim.is_some() {
            self.stats.violations += 1;
        }
        Ok(StoreOutcome {
            done_at: now + self.hit_cycles,
            violation: victim.map(|victim| Violation { victim, addr }),
        })
    }

    fn commit(&mut self, pu: PuId, now: Cycle) -> Cycle {
        if let Some(task) = self.assignments.task_of(pu) {
            let addrs: Vec<Addr> = self
                .versions
                .iter()
                .filter(|(_, vs)| vs.contains_key(&task))
                .map(|(a, _)| *a)
                .collect();
            for addr in addrs {
                let vs = self.versions.get_mut(&addr).expect("listed");
                let v = vs.remove(&task).expect("listed");
                self.memory.insert(addr, v);
                self.stats.writebacks += 1;
            }
            for recs in self.exposed_loads.values_mut() {
                recs.retain(|&t| t != task);
            }
        }
        self.assignments.release(pu);
        now + self.hit_cycles
    }

    fn squash(&mut self, pu: PuId) {
        if let Some(task) = self.assignments.task_of(pu) {
            for vs in self.versions.values_mut() {
                vs.remove(&task);
            }
            for recs in self.exposed_loads.values_mut() {
                recs.retain(|&t| t != task);
            }
        }
        self.assignments.release(pu);
    }

    fn drain(&mut self) {
        // Committed state is already in `memory`; nothing is buffered.
    }

    fn architectural(&self, addr: Addr) -> Word {
        self.memory.get(&addr).copied().unwrap_or(Word::ZERO)
    }

    fn stats(&self) -> MemStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }
}

impl ModelCheckable for IdealMemory {
    fn fingerprint(&self, addrs: &[Addr], h: &mut StateHasher) {
        for pu in 0..self.assignments.num_pus() {
            h.write_opt_u64(self.assignments.task_of(PuId(pu)).map(|t| t.0));
        }
        for &addr in addrs {
            match self.versions.get(&addr) {
                None => h.write_usize(0),
                Some(vs) => {
                    h.write_usize(vs.len());
                    for (t, v) in vs {
                        h.write_u64(t.0);
                        h.write_u64(v.0);
                    }
                }
            }
            // Exposed-load records are hashed sorted: victim selection
            // takes the minimum, so record order is not functional state.
            match self.exposed_loads.get(&addr) {
                None => h.write_usize(0),
                Some(recs) => {
                    let mut sorted: Vec<TaskId> = recs.clone();
                    sorted.sort_unstable();
                    h.write_usize(sorted.len());
                    for t in sorted {
                        h.write_u64(t.0);
                    }
                }
            }
            h.write_opt_u64(self.memory.get(&addr).map(|v| v.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal() -> IdealMemory {
        let mut m = IdealMemory::new(4, 1);
        for i in 0..4 {
            m.assign(PuId(i), TaskId(i as u64));
        }
        m
    }

    #[test]
    fn load_sees_closest_previous_version() {
        let mut m = ideal();
        m.store(PuId(0), Addr(8), Word(10), Cycle(0)).unwrap();
        m.store(PuId(2), Addr(8), Word(30), Cycle(0)).unwrap();
        // Task 1 sees task 0's version; task 3 sees task 2's.
        assert_eq!(m.load(PuId(1), Addr(8), Cycle(1)).unwrap().value, Word(10));
        assert_eq!(m.load(PuId(3), Addr(8), Cycle(1)).unwrap().value, Word(30));
    }

    #[test]
    fn own_store_shadows_everything() {
        let mut m = ideal();
        m.store(PuId(0), Addr(8), Word(1), Cycle(0)).unwrap();
        m.store(PuId(1), Addr(8), Word(2), Cycle(0)).unwrap();
        assert_eq!(m.load(PuId(1), Addr(8), Cycle(1)).unwrap().value, Word(2));
    }

    #[test]
    fn violation_on_late_store() {
        let mut m = ideal();
        m.load(PuId(2), Addr(4), Cycle(0)).unwrap(); // task 2 exposed load
        let st = m.store(PuId(0), Addr(4), Word(5), Cycle(1)).unwrap();
        assert_eq!(st.violation.unwrap().victim, TaskId(2));
    }

    #[test]
    fn intervening_version_shields_the_load() {
        let mut m = ideal();
        m.store(PuId(1), Addr(4), Word(9), Cycle(0)).unwrap(); // version by task 1
        m.load(PuId(2), Addr(4), Cycle(1)).unwrap(); // reads task 1's version
        let st = m.store(PuId(0), Addr(4), Word(5), Cycle(2)).unwrap();
        assert!(
            st.violation.is_none(),
            "task 2's load read version 1, not memory"
        );
    }

    #[test]
    fn own_version_prevents_exposure() {
        let mut m = ideal();
        m.store(PuId(2), Addr(4), Word(9), Cycle(0)).unwrap();
        m.load(PuId(2), Addr(4), Cycle(1)).unwrap(); // reads own store
        let st = m.store(PuId(0), Addr(4), Word(5), Cycle(2)).unwrap();
        assert!(st.violation.is_none());
    }

    #[test]
    fn commit_moves_versions_to_memory() {
        let mut m = ideal();
        m.store(PuId(0), Addr(4), Word(5), Cycle(0)).unwrap();
        m.commit(PuId(0), Cycle(1));
        m.drain();
        assert_eq!(m.architectural(Addr(4)), Word(5));
    }

    #[test]
    fn squash_discards_versions_and_records() {
        let mut m = ideal();
        m.store(PuId(2), Addr(4), Word(9), Cycle(0)).unwrap();
        m.load(PuId(3), Addr(8), Cycle(0)).unwrap();
        m.squash(PuId(2));
        m.squash(PuId(3));
        m.assign(PuId(2), TaskId(2));
        assert_eq!(
            m.load(PuId(2), Addr(4), Cycle(1)).unwrap().value,
            Word::ZERO
        );
        // The squashed task-3 load no longer triggers violations.
        let st = m.store(PuId(0), Addr(8), Word(1), Cycle(2)).unwrap();
        assert!(st.violation.is_none());
    }

    #[test]
    fn commit_order_determines_final_value() {
        let mut m = ideal();
        m.store(PuId(0), Addr(4), Word(1), Cycle(0)).unwrap();
        m.store(PuId(1), Addr(4), Word(2), Cycle(0)).unwrap();
        m.commit(PuId(0), Cycle(1));
        m.commit(PuId(1), Cycle(2));
        assert_eq!(m.architectural(Addr(4)), Word(2));
    }

    #[test]
    fn no_task_errors() {
        let mut m = IdealMemory::new(2, 1);
        assert!(matches!(
            m.load(PuId(0), Addr(0), Cycle(0)),
            Err(AccessError::NoTask(_))
        ));
    }
}
