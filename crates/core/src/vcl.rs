//! The Version Control Logic (VCL).
//!
//! In hardware the VCL is combinational logic beside the bus arbiter
//! (paper Figure 5): on every bus request it receives the states of the
//! requested line in each L1 cache, reconstructs the Version Ordering List,
//! and tells each cache what to do. Here it is a set of *pure planning
//! functions*: given [`LineSnapshot`]s they return a plan — who supplies
//! each sub-block, which committed versions to write back or purge, which
//! copies to invalidate or update, which tasks are squashed by a detected
//! memory-dependence violation, who may snarf, and the VOL after the
//! transaction. The [`SvcSystem`](crate::SvcSystem) applies the plan
//! (moves data, rewrites pointers and bits) and charges the timing.
//!
//! Keeping the VCL pure makes the paper's figure walk-throughs directly
//! testable; see the unit tests at the bottom of this module.

use smallvec::SmallVec;
use svc_sim::trace::{PlanKind, PlanSummary};
use svc_types::{LineId, PuId, TaskId};

use crate::mask::SubMask;
use crate::snapshot::LineSnapshot;
use crate::vol::{order_vol, VolOrder};

/// Per-sub-block fill sources; inline for the common ≤8-sub-block case.
pub type FillList = SmallVec<(usize, SupplySource), 8>;
/// Per-PU sub-block masks (flush and invalidate sets).
pub type MaskList = SmallVec<(PuId, SubMask), 8>;
/// A short list of PUs (purge/demote/snarf/update sets).
pub type PuList = SmallVec<PuId, 8>;
/// Squash victims: `(pu, task)` pairs.
pub type VictimList = SmallVec<(PuId, TaskId), 8>;

fn fill_split(fill: &[(usize, SupplySource)]) -> (u32, u32) {
    let from_cache = fill
        .iter()
        .filter(|(_, s)| matches!(s, SupplySource::Cache(_)))
        .count() as u32;
    (from_cache, fill.len() as u32 - from_cache)
}

/// Where one sub-block of a fill comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupplySource {
    /// Another cache's line (a cache-to-cache transfer, not a miss).
    Cache(PuId),
    /// The next level of memory (a miss in the paper's accounting).
    Memory,
}

/// The VCL's answer to a `BusRead` request (paper §3.2.2, §3.4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadPlan {
    /// Per filled sub-block: where its data comes from. Covers exactly the
    /// sub-blocks the requestor asked to fill.
    pub fill: FillList,
    /// Whether the requestor's filled line is (a copy of) the architectural
    /// version — sets the A bit (§3.5.1).
    pub arch: bool,
    /// Committed winners to write back to memory, oldest-version data
    /// first: for each sub-block the *most recent committed* version is
    /// flushed (§3.4.1); superseded committed data is purged silently.
    pub flush: MaskList,
    /// Committed lines to invalidate after the flush: on a read, the
    /// passive-*dirty* lines ("on a bus request, a line in passive dirty
    /// state is invalidated whether it is flushed or not", §3.8.1);
    /// passive-clean copies are retained.
    pub purge: PuList,
    /// With the retain-flushed optimization: passive-dirty lines whose
    /// entire store mask was flushed are demoted to passive-clean
    /// architectural copies instead of purged (§3.8.1's "further
    /// optimization").
    pub demote: PuList,
    /// Caches (beyond the requestor) that may snarf the fill (§3.6),
    /// already filtered to those whose correct version matches the
    /// requestor's for every filled sub-block.
    pub snarfers: PuList,
    /// The VOL after the transaction (including requestor and snarfers).
    pub vol_after: VolOrder,
}

/// The VCL's answer to a `BusWrite` request (paper §3.2.3, §3.4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritePlan {
    /// Fill sources for sub-blocks the requestor lacks (write-allocate).
    pub fill: FillList,
    /// Committed winners to flush to memory before purging (§3.4.2:
    /// "it determines that version 1 has to be written back ... and the
    /// other versions can be invalidated").
    pub flush: MaskList,
    /// All committed lines — purged on a store miss (Figure 13).
    pub purge: PuList,
    /// Uncommitted copies in the invalidation range (requestor's successor
    /// up to the next version): `(pu, sub-blocks to invalidate)`.
    pub invalidate: MaskList,
    /// Hybrid update–invalidate (§3.8): non-violated copies in the range
    /// that receive the new data in place instead of being invalidated.
    pub update: PuList,
    /// Tasks whose recorded use-before-define was exposed by this store —
    /// each must be squashed along with everything younger (§3.2.3).
    pub victims: VictimList,
    /// The VOL after the transaction.
    pub vol_after: VolOrder,
}

/// The VCL's answer to a `BusWback` (dirty replacement) request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WbackPlan {
    /// Committed winners flushed to memory before the evicted data lands.
    pub flush: MaskList,
    /// Committed lines purged (all of them — the castout supersedes or
    /// flushes every committed version of the line).
    pub purge: PuList,
    /// Sub-blocks of the evicted line whose data must be written to
    /// memory.
    pub write_evicted: SubMask,
    /// The VOL after the transaction (evictor removed).
    pub vol_after: VolOrder,
}

impl ReadPlan {
    /// Compresses the plan into a [`PlanSummary`] for the event trace.
    pub fn trace_summary(&self, pu: PuId, task: Option<TaskId>, line: LineId) -> PlanSummary {
        let (fill_from_cache, fill_from_memory) = fill_split(&self.fill);
        PlanSummary {
            kind: PlanKind::Read,
            pu,
            task,
            line,
            fill_from_cache,
            fill_from_memory,
            flush: self.flush.len() as u32,
            purge: self.purge.len() as u32,
            invalidate: 0,
            update: 0,
            snarfers: self.snarfers.len() as u32,
            victims: Vec::new(),
            arch: self.arch,
        }
    }
}

impl WritePlan {
    /// Compresses the plan into a [`PlanSummary`] for the event trace.
    pub fn trace_summary(&self, pu: PuId, task: Option<TaskId>, line: LineId) -> PlanSummary {
        let (fill_from_cache, fill_from_memory) = fill_split(&self.fill);
        PlanSummary {
            kind: PlanKind::Write,
            pu,
            task,
            line,
            fill_from_cache,
            fill_from_memory,
            flush: self.flush.len() as u32,
            purge: self.purge.len() as u32,
            invalidate: self.invalidate.len() as u32,
            update: self.update.len() as u32,
            snarfers: 0,
            victims: self.victims.iter().map(|&(_, t)| t).collect(),
            arch: false,
        }
    }
}

impl WbackPlan {
    /// Compresses the plan into a [`PlanSummary`] for the event trace.
    pub fn trace_summary(&self, pu: PuId, task: Option<TaskId>, line: LineId) -> PlanSummary {
        PlanSummary {
            kind: PlanKind::Wback,
            pu,
            task,
            line,
            fill_from_cache: 0,
            fill_from_memory: 0,
            flush: self.flush.len() as u32,
            purge: self.purge.len() as u32,
            invalidate: 0,
            update: 0,
            snarfers: 0,
            victims: Vec::new(),
            arch: false,
        }
    }
}

/// The Version Control Logic. Holds only the protocol options that change
/// its decisions; all per-request state arrives as arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vcl {
    /// §3.8: update instead of invalidate for non-violated range copies.
    pub hybrid_update: bool,
    /// §3.6: offer fills to other caches.
    pub snarfing: bool,
    /// Whether the design maintains the T (stale) bit, allowing non-stale
    /// committed copies to act as suppliers.
    pub trust_stale: bool,
    /// Cap on copies updated (rather than invalidated) per store under
    /// the hybrid protocol.
    pub update_limit: usize,
    /// §3.8.1 optimization: keep fully-flushed passive-dirty lines as
    /// passive-clean architectural copies on BusRead.
    pub retain_flushed: bool,
}

impl Vcl {
    /// Plans a `BusRead`: requestor `pu` (running `task`) wants the
    /// sub-blocks in `fill_mask` of the line described by `snaps` (one
    /// snapshot per PU; invalid entries for non-holders). `head_task` is
    /// the oldest executing task (for A-bit decisions);
    /// `snarf_candidates` are caches with a free slot and no copy.
    pub fn plan_read(
        &self,
        snaps: &[LineSnapshot],
        pu: PuId,
        task: TaskId,
        head_task: Option<TaskId>,
        fill_mask: SubMask,
        snarf_candidates: &[(PuId, TaskId)],
    ) -> ReadPlan {
        let vol = ordered(snaps);
        let pos = position_for(&vol, pu, task);
        let fill = plan_fill(&vol, pos, pu, fill_mask, self.trust_stale);
        let arch = fill.iter().all(|&(_, src)| match src {
            SupplySource::Memory => true,
            SupplySource::Cache(spu) => {
                let s = member(&vol, spu);
                s.committed || s.arch || head_task.is_some() && s.task == head_task
            }
        });
        let (flush, _) = committed_winners(&vol);
        // Read: purge passive-dirty lines, keep passive-clean copies.
        // With retain_flushed, a passive-dirty line whose whole store mask
        // is being flushed survives as an architectural copy.
        let fully_flushed = |s: &LineSnapshot| {
            flush
                .iter()
                .any(|&(q, m)| q == s.pu && s.store.minus(m).is_empty())
        };
        let mut demote: PuList = SmallVec::new();
        let mut purge: PuList = SmallVec::new();
        for s in vol.iter().filter(|s| s.committed && s.is_version()) {
            if self.retain_flushed && s.pu != pu && fully_flushed(s) {
                demote.push(s.pu);
            } else {
                purge.push(s.pu);
            }
        }

        // Snarfers: a candidate may copy the fill iff, for every filled
        // sub-block, its correct supplier equals the requestor's.
        let snarfers: PuList = if self.snarfing {
            snarf_candidates
                .iter()
                .filter(|&&(q, qtask)| {
                    q != pu
                        && fill_mask.iter().all(|j| {
                            let qpos = position_for(&vol, q, qtask);
                            supplier(&vol, qpos, q, j, self.trust_stale)
                                == supplier(&vol, pos, pu, j, self.trust_stale)
                        })
                })
                .map(|&(q, _)| q)
                .collect()
        } else {
            SmallVec::new()
        };

        // VOL afterwards: survivors (clean committed + all uncommitted) in
        // order, with requestor and snarfers at their task positions.
        let mut after: OrderBuf = SmallVec::new();
        for s in &vol {
            if s.pu == pu {
                continue; // the requestor re-enters at its task position
            }
            if s.committed {
                if !s.is_version() || demote.contains(&s.pu) {
                    after.push((None, s.pu)); // retained passive clean
                }
            } else {
                after.push((Some(s.ordering_task().expect("uncommitted")), s.pu));
            }
        }
        after.push((Some(task), pu));
        for &(q, qtask) in snarf_candidates {
            if snarfers.contains(&q) {
                after.push((Some(qtask), q));
            }
        }
        let vol_after = finish_order(after);

        ReadPlan {
            fill,
            arch,
            flush,
            purge,
            demote,
            snarfers,
            vol_after,
        }
    }

    /// Plans a `BusWrite`: requestor `pu` (running `task`) stores to the
    /// sub-blocks in `store_mask`; `fill_mask` are the sub-blocks it also
    /// needs fetched (write-allocate of words it does not overwrite).
    pub fn plan_write(
        &self,
        snaps: &[LineSnapshot],
        pu: PuId,
        task: TaskId,
        store_mask: SubMask,
        fill_mask: SubMask,
    ) -> WritePlan {
        let vol = ordered(snaps);
        let pos = position_for(&vol, pu, task);
        let fill = plan_fill(&vol, pos, pu, fill_mask, self.trust_stale);
        let (flush, _) = committed_winners(&vol);
        // Store miss purges every committed version/copy (Figure 13).
        let purge: PuList = vol.iter().filter(|s| s.committed).map(|s| s.pu).collect();

        // Walk the successors: invalidate (or update) copies until the next
        // version of these sub-blocks, inclusive if it recorded a use
        // before definition (§3.2.3).
        let mut invalidate: MaskList = SmallVec::new();
        let mut update: PuList = SmallVec::new();
        let mut victims: VictimList = SmallVec::new();
        for s in vol.iter().filter(|s| !s.committed) {
            let stask = s.ordering_task().expect("uncommitted");
            if s.pu == pu || !task.is_older_than(stask) {
                continue; // predecessors and self are untouched
            }
            // (Successors are scanned in VOL order because `vol` is
            // ordered; the first version boundary stops the walk.)
            let violated = s.load.intersects(store_mask);
            let is_boundary = s.store.intersects(store_mask);
            if violated {
                victims.push((s.pu, stask));
                invalidate.push((s.pu, store_mask));
            } else if is_boundary {
                // Next version, no use-before-define: walk stops before it.
            } else if self.hybrid_update
                && update.len() < self.update_limit
                && !s.store.intersects(store_mask)
            {
                update.push(s.pu);
            } else {
                invalidate.push((s.pu, store_mask));
            }
            if is_boundary {
                break;
            }
        }

        // VOL afterwards: committed all purged; fully-invalidated copies
        // drop out; requestor joins at its position. (Squash victims keep
        // their membership here — the engine squashes them immediately,
        // which clears their whole cache.)
        let mut after: OrderBuf = SmallVec::new();
        for s in vol.iter().filter(|s| !s.committed) {
            if s.pu == pu {
                continue;
            }
            let gone = invalidate
                .iter()
                .any(|&(q, m)| q == s.pu && s.valid.minus(m).is_empty());
            if !gone {
                after.push((Some(s.ordering_task().expect("uncommitted")), s.pu));
            }
        }
        after.push((Some(task), pu));
        let vol_after = finish_order(after);

        WritePlan {
            fill,
            flush,
            purge,
            invalidate,
            update,
            victims,
            vol_after,
        }
    }

    /// Plans a `BusWback`: cache `pu` casts out its (dirty) line, writing
    /// `evict_store` sub-blocks. For a *committed* castout only the
    /// winning (most recent committed) sub-blocks reach memory; for an
    /// *active* castout (head task only) the evicted data supersedes all
    /// committed versions of the same sub-blocks.
    pub fn plan_wback(&self, snaps: &[LineSnapshot], pu: PuId) -> WbackPlan {
        let vol = ordered(snaps);
        let me = member(&vol, pu);
        let evict_store = me.store;
        let (mut flush, winners) = committed_winners(&vol);
        let write_evicted = if me.committed {
            // Only the sub-blocks this line wins are written; the rest are
            // superseded by younger committed versions.
            let mine = winners
                .iter()
                .filter(|&&(q, _)| q == pu)
                .fold(SubMask::EMPTY, |m, &(_, j)| m | SubMask::single(j));
            flush.retain(|&(q, _)| q != pu); // we write it as the castout
            mine
        } else {
            // Active castout: head data beats every committed version of
            // the same sub-blocks, so drop those from the flush set.
            flush = flush
                .into_iter()
                .filter_map(|(q, m)| {
                    let kept = m.minus(evict_store);
                    if kept.is_empty() {
                        None
                    } else {
                        Some((q, kept))
                    }
                })
                .collect();
            evict_store
        };
        let purge: PuList = vol
            .iter()
            .filter(|s| s.committed || s.pu == pu)
            .map(|s| s.pu)
            .collect();
        let mut after: OrderBuf = SmallVec::new();
        for s in vol.iter().filter(|s| !s.committed && s.pu != pu) {
            after.push((Some(s.ordering_task().expect("uncommitted")), s.pu));
        }
        let vol_after = finish_order(after);
        WbackPlan {
            flush,
            purge,
            write_evicted,
            vol_after,
        }
    }
}

// ---------------------------------------------------------------------
// Internal helpers
// ---------------------------------------------------------------------

/// `(ordering task, pu)` pairs accumulated before [`finish_order`].
type OrderBuf = SmallVec<(Option<TaskId>, PuId), 8>;

/// Valid members in VOL order.
fn ordered(snaps: &[LineSnapshot]) -> SmallVec<LineSnapshot, 8> {
    order_vol(snaps)
        .into_iter()
        .map(|pu| {
            *snaps
                .iter()
                .find(|s| s.pu == pu)
                .expect("ordered member exists")
        })
        .collect()
}

fn member(vol: &[LineSnapshot], pu: PuId) -> &LineSnapshot {
    vol.iter().find(|s| s.pu == pu).expect("member present")
}

/// The index at (or before) which a request from `pu` running `task` sits:
/// if `pu` holds an *uncommitted* copy, its index (the line belongs to this
/// very task); otherwise the position where the task would be inserted —
/// after every committed member (including `pu`'s own old committed line,
/// which predates the task) and after every uncommitted member with an
/// older task.
fn position_for(vol: &[LineSnapshot], pu: PuId, task: TaskId) -> usize {
    if let Some(i) = vol.iter().position(|s| s.pu == pu && !s.committed) {
        return i;
    }
    let mut pos = 0;
    for (i, s) in vol.iter().enumerate() {
        match s.ordering_task() {
            None => pos = i + 1, // committed: always before us
            Some(t) if t.is_older_than(task) => pos = i + 1,
            Some(_) => break,
        }
    }
    pos
}

/// The cache that supplies sub-block `j` to a requestor at `pos`: the
/// closest predecessor in the VOL with valid data for `j` (§3.2.2's
/// reverse search). `None` means memory supplies.
///
/// Uncommitted predecessors always hold the right data for their position
/// (the invalidation walks keep them consistent). Committed members are
/// trickier: a retained passive-clean *copy* may predate a committed
/// version that was since flushed to memory, so it may supply only if it
/// holds actual version data for `j` (its S bit) or its T bit proves it a
/// copy of the most recent version (`trust_stale` — designs without the T
/// bit fall back to memory). The requestor's own line can only be a
/// committed one here (an active copy of `j` would have hit locally).
fn supplier(
    vol: &[LineSnapshot],
    pos: usize,
    pu: PuId,
    j: usize,
    trust_stale: bool,
) -> Option<PuId> {
    vol[..pos]
        .iter()
        .rev()
        .find(|s| {
            if !s.valid.contains(j) {
                return false;
            }
            if s.committed {
                s.store.contains(j) || (trust_stale && !s.stale)
            } else {
                s.pu != pu
            }
        })
        .map(|s| s.pu)
}

fn plan_fill(
    vol: &[LineSnapshot],
    pos: usize,
    pu: PuId,
    fill_mask: SubMask,
    trust_stale: bool,
) -> FillList {
    fill_mask
        .iter()
        .map(|j| {
            let src = match supplier(vol, pos, pu, j, trust_stale) {
                Some(q) => SupplySource::Cache(q),
                None => SupplySource::Memory,
            };
            (j, src)
        })
        .collect()
}

/// For each sub-block, the most recent committed version wins and must be
/// flushed to memory; older committed store data is silently superseded.
/// Returns the flush list (grouped per PU) and the raw `(pu, subblock)`
/// winner pairs.
/// Per-PU flush masks, plus the raw `(pu, sub-block)` winner pairs.
type Winners = (MaskList, SmallVec<(PuId, usize), 8>);

fn committed_winners(vol: &[LineSnapshot]) -> Winners {
    let mut winners: SmallVec<(PuId, usize), 8> = SmallVec::new();
    let committed: SmallVec<&LineSnapshot, 8> = vol.iter().filter(|s| s.committed).collect();
    // Only sub-blocks some committed line actually stored can win; iterate
    // their union (ascending) rather than all 64 positions.
    let stored = committed.iter().fold(SubMask::EMPTY, |m, s| m | s.store);
    for j in stored.iter() {
        // Youngest committed holder of S[j] wins.
        if let Some(s) = committed.iter().rev().find(|s| s.store.contains(j)) {
            winners.push((s.pu, j));
        }
    }
    let mut flush: MaskList = SmallVec::new();
    for &(pu, j) in &winners {
        match flush.iter_mut().find(|(q, _)| *q == pu) {
            Some((_, m)) => m.set(j),
            None => flush.push((pu, SubMask::single(j))),
        }
    }
    (flush, winners)
}

/// Sorts `(ordering_task, pu)` pairs into a VOL: `None` (committed,
/// retained) entries keep their relative order at the front; tasked
/// entries follow by task id.
fn finish_order(mut entries: OrderBuf) -> VolOrder {
    // Stable sort: None < Some, Some sorted by task.
    entries.sort_by(|a, b| match (a.0, b.0) {
        (None, None) => core::cmp::Ordering::Equal,
        (None, Some(_)) => core::cmp::Ordering::Less,
        (Some(_), None) => core::cmp::Ordering::Greater,
        (Some(x), Some(y)) => x.cmp(&y),
    });
    entries.into_iter().map(|(_, pu)| pu).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: usize = 3; // PU W in the paper's 4-PU examples
    const X: usize = 0;
    const Y: usize = 1;
    const Z: usize = 2;

    /// Builds a snapshot; `valid`/`store`/`load` given as bit masks over
    /// one-word lines (bit 0 only) unless stated otherwise.
    #[allow(clippy::too_many_arguments)]
    fn snap(
        pu: usize,
        task: Option<u64>,
        valid: u64,
        store: u64,
        load: u64,
        committed: bool,
        next: Option<usize>,
    ) -> LineSnapshot {
        LineSnapshot {
            pu: PuId(pu),
            task: task.map(TaskId),
            valid: SubMask(valid),
            store: SubMask(store),
            load: SubMask(load),
            committed,
            stale: false,
            arch: false,
            next: next.map(PuId),
        }
    }

    fn absent(pu: usize, task: Option<u64>) -> LineSnapshot {
        snap(pu, task, 0, 0, 0, false, None)
    }

    fn vcl() -> Vcl {
        Vcl {
            hybrid_update: false,
            snarfing: false,
            trust_stale: true,
            update_limit: usize::MAX,
            retain_flushed: false,
        }
    }

    // ---- Figure 8: base-design load -------------------------------------

    #[test]
    fn figure8_load_supplied_by_closest_previous_version() {
        // X/0 has version 0 (S), Z/1 has version 1 (S), Y/3 has version 3
        // (S). W/2 loads: the VCL must supply Z's version (task 1).
        let snaps = [
            snap(X, Some(0), 1, 1, 0, false, Some(Z)),
            snap(Y, Some(3), 1, 1, 0, false, None),
            snap(Z, Some(1), 1, 1, 0, false, Some(Y)),
            absent(W, Some(2)),
        ];
        let plan = vcl().plan_read(
            &snaps,
            PuId(W),
            TaskId(2),
            Some(TaskId(0)),
            SubMask::all(1),
            &[],
        );
        assert_eq!(plan.fill, vec![(0, SupplySource::Cache(PuId(Z)))]);
        assert!(!plan.arch, "an uncommitted non-head version is speculative");
        assert!(plan.flush.is_empty());
        assert!(plan.purge.is_empty());
        assert_eq!(
            plan.vol_after,
            vec![PuId(X), PuId(Z), PuId(W), PuId(Y)],
            "W/2 inserted between Z/1 and Y/3"
        );
    }

    // ---- Figure 9: base-design stores -----------------------------------

    #[test]
    fn figure9_store_by_most_recent_task_invalidates_nothing() {
        // X/0 and Z/1 hold versions; W/2 holds a copy with L set. Y/3
        // stores: most recent task, no successors to invalidate.
        let snaps = [
            snap(X, Some(0), 1, 1, 0, false, Some(Z)),
            absent(Y, Some(3)),
            snap(Z, Some(1), 1, 1, 0, false, Some(W)),
            snap(W, Some(2), 1, 0, 1, false, None),
        ];
        let plan = vcl().plan_write(&snaps, PuId(Y), TaskId(3), SubMask::all(1), SubMask::EMPTY);
        assert!(plan.invalidate.is_empty());
        assert!(plan.victims.is_empty());
        assert_eq!(plan.vol_after, vec![PuId(X), PuId(Z), PuId(W), PuId(Y)]);
    }

    #[test]
    fn figure9_store_detects_violation() {
        // After task 3's store: X/0, Z/1 versions; W/2 copy with L; Y/3
        // version. Now Z executing task 1 stores: the VCL walks from W/2
        // (immediate successor) to Y/3 (next version, not included — no L).
        // W has L set -> violation, tasks 2+ squash.
        let snaps = [
            snap(X, Some(0), 1, 1, 0, false, Some(Z)),
            snap(Y, Some(3), 1, 1, 0, false, None),
            absent(Z, Some(1)),
            snap(W, Some(2), 1, 0, 1, false, Some(Y)),
        ];
        let plan = vcl().plan_write(&snaps, PuId(Z), TaskId(1), SubMask::all(1), SubMask::EMPTY);
        assert_eq!(plan.victims, vec![(PuId(W), TaskId(2))]);
        assert_eq!(plan.invalidate, vec![(PuId(W), SubMask::all(1))]);
        assert_eq!(
            plan.vol_after,
            vec![PuId(X), PuId(Z), PuId(Y)],
            "W's copy is gone; Z takes its place between X/0 and Y/3"
        );
    }

    #[test]
    fn store_walk_stops_at_next_version_without_load_bit() {
        // Copies behind the next version survive: X/0 stores; Z/1 is the
        // next version (no L); W/2 holds a copy of Z's version.
        let snaps = [
            absent(X, Some(0)),
            absent(Y, Some(3)),
            snap(Z, Some(1), 1, 1, 0, false, Some(W)),
            snap(W, Some(2), 1, 0, 1, false, None),
        ];
        let plan = vcl().plan_write(&snaps, PuId(X), TaskId(0), SubMask::all(1), SubMask::EMPTY);
        assert!(
            plan.victims.is_empty(),
            "Z stored before loading; W copied Z's version"
        );
        assert!(plan.invalidate.is_empty());
    }

    #[test]
    fn store_violates_next_version_with_load_bit_inclusive() {
        // The next version itself recorded a use before definition: it is
        // included in the invalidation (§3.2.3 "inclusive, if it has the L
        // bit set").
        let snaps = [
            absent(X, Some(0)),
            snap(Z, Some(1), 1, 1, 1, false, None), // loaded then stored
            absent(Y, Some(3)),
            absent(W, Some(2)),
        ];
        let plan = vcl().plan_write(&snaps, PuId(X), TaskId(0), SubMask::all(1), SubMask::EMPTY);
        assert_eq!(plan.victims, vec![(PuId(Z), TaskId(1))]);
    }

    // ---- Figure 12: EC-design load with committed versions ---------------

    #[test]
    fn figure12_load_gets_most_recent_committed_version() {
        // X holds committed version 0, Z holds committed version 1
        // (chain X->Z), Y/3 holds uncommitted version 3. W/2 loads:
        // supply = Z's committed version 1 (W/2 precedes Y/3); version 1 is
        // flushed to memory; version 0 is purged.
        let snaps = [
            snap(X, Some(5), 1, 1, 0, true, Some(Z)),
            snap(Y, Some(3), 1, 1, 0, false, None),
            snap(Z, Some(4), 1, 1, 0, true, Some(Y)),
            absent(W, Some(2)),
        ];
        let plan = vcl().plan_read(
            &snaps,
            PuId(W),
            TaskId(2),
            Some(TaskId(2)),
            SubMask::all(1),
            &[],
        );
        assert_eq!(plan.fill, vec![(0, SupplySource::Cache(PuId(Z)))]);
        assert!(plan.arch, "a committed version is architectural");
        assert_eq!(plan.flush, vec![(PuId(Z), SubMask::all(1))]);
        // Both committed lines are dirty, so both are invalidated after
        // the flush (final-design rule).
        assert!(plan.purge.contains(&PuId(X)) && plan.purge.contains(&PuId(Z)));
        assert_eq!(plan.vol_after, vec![PuId(W), PuId(Y)]);
    }

    // ---- Figure 13: EC-design store purges committed versions ------------

    #[test]
    fn figure13_store_purges_committed_versions() {
        // Z holds committed v1, X holds committed v0 (chain X->Z); Y/3
        // uncommitted v3. X (now task 5) stores: all committed versions
        // purge, v1 flushes, new VOL = Y/3, X/5.
        let snaps = [
            snap(X, Some(5), 1, 1, 0, true, Some(Z)),
            snap(Y, Some(3), 1, 1, 0, false, None),
            snap(Z, Some(4), 1, 1, 0, true, Some(Y)),
            absent(W, Some(2)),
        ];
        let plan = vcl().plan_write(&snaps, PuId(X), TaskId(5), SubMask::all(1), SubMask::EMPTY);
        assert_eq!(plan.flush, vec![(PuId(Z), SubMask::all(1))]);
        assert!(plan.purge.contains(&PuId(X)) && plan.purge.contains(&PuId(Z)));
        assert!(plan.victims.is_empty());
        assert_eq!(plan.vol_after, vec![PuId(Y), PuId(X)]);
    }

    // ---- Sub-block (RL) behaviour ----------------------------------------

    #[test]
    fn store_mask_limits_violations_to_overlapping_subblocks() {
        // False sharing: W/2 loaded sub-block 1; X/0 stores sub-block 0 of
        // the same line. No violation; W loses only sub-block 0.
        let snaps = [
            absent(X, Some(0)),
            absent(Y, Some(3)),
            absent(Z, Some(1)),
            snap(W, Some(2), 0b11, 0, 0b10, false, None),
        ];
        let plan = vcl().plan_write(
            &snaps,
            PuId(X),
            TaskId(0),
            SubMask::single(0),
            SubMask::EMPTY,
        );
        assert!(
            plan.victims.is_empty(),
            "loads were to a different sub-block"
        );
        assert_eq!(plan.invalidate, vec![(PuId(W), SubMask::single(0))]);
        assert!(
            plan.vol_after.contains(&PuId(W)),
            "W keeps its line (sub-block 1 still valid)"
        );
    }

    #[test]
    fn committed_winners_are_per_subblock() {
        // Committed A stored sub-block 0; committed B (younger) stored
        // sub-block 1. Both win their own sub-block.
        let snaps = [
            snap(X, Some(8), 0b01, 0b01, 0, true, Some(Y)),
            snap(Y, Some(9), 0b10, 0b10, 0, true, None),
            absent(Z, Some(4)),
            absent(W, Some(5)),
        ];
        let plan = vcl().plan_write(
            &snaps,
            PuId(Z),
            TaskId(4),
            SubMask::single(0),
            SubMask::EMPTY,
        );
        let mut flush = plan.flush.clone();
        flush.sort_by_key(|(pu, _)| pu.index());
        assert_eq!(
            flush,
            vec![(PuId(X), SubMask::single(0)), (PuId(Y), SubMask::single(1))]
        );
    }

    #[test]
    fn superseded_committed_subblock_is_not_flushed() {
        // Committed A stored sub-block 0; committed B (younger) also
        // stored sub-block 0: only B flushes.
        let snaps = [
            snap(X, Some(8), 0b01, 0b01, 0, true, Some(Y)),
            snap(Y, Some(9), 0b01, 0b01, 0, true, None),
            absent(Z, Some(4)),
            absent(W, Some(5)),
        ];
        let plan = vcl().plan_read(&snaps, PuId(Z), TaskId(4), None, SubMask::single(0), &[]);
        assert_eq!(plan.flush, vec![(PuId(Y), SubMask::single(0))]);
        assert_eq!(plan.fill, vec![(0, SupplySource::Cache(PuId(Y)))]);
    }

    // ---- Hybrid update ----------------------------------------------------

    #[test]
    fn hybrid_update_replaces_invalidation_for_clean_copies() {
        let v = Vcl {
            hybrid_update: true,
            snarfing: false,
            trust_stale: true,
            update_limit: usize::MAX,
            retain_flushed: false,
        };
        // W/2 holds a clean copy (no L on the stored sub-block); Z/1
        // stores. With hybrid update W receives the data instead of losing
        // the line.
        let snaps = [
            absent(X, Some(0)),
            absent(Y, Some(3)),
            absent(Z, Some(1)),
            snap(W, Some(2), 1, 0, 0, false, None),
        ];
        let plan = v.plan_write(&snaps, PuId(Z), TaskId(1), SubMask::all(1), SubMask::EMPTY);
        assert_eq!(plan.update, vec![PuId(W)]);
        assert!(plan.invalidate.is_empty());
        assert!(plan.vol_after.contains(&PuId(W)));
    }

    #[test]
    fn hybrid_update_still_squashes_violations() {
        let v = Vcl {
            hybrid_update: true,
            snarfing: false,
            trust_stale: true,
            update_limit: usize::MAX,
            retain_flushed: false,
        };
        let snaps = [
            absent(X, Some(0)),
            absent(Y, Some(3)),
            absent(Z, Some(1)),
            snap(W, Some(2), 1, 0, 1, false, None),
        ];
        let plan = v.plan_write(&snaps, PuId(Z), TaskId(1), SubMask::all(1), SubMask::EMPTY);
        assert_eq!(plan.victims, vec![(PuId(W), TaskId(2))]);
        assert!(plan.update.is_empty());
    }

    // ---- Snarfing -----------------------------------------------------------

    #[test]
    fn snarf_allowed_only_for_matching_version() {
        let v = Vcl {
            hybrid_update: false,
            snarfing: true,
            trust_stale: true,
            update_limit: usize::MAX,
            retain_flushed: false,
        };
        // Z/1 holds a version. W/2 loads it. Y/3 may snarf (same
        // supplier); X/0 may NOT (it precedes the version, its correct
        // supplier is memory).
        let snaps = [
            absent(X, Some(0)),
            absent(Y, Some(3)),
            snap(Z, Some(1), 1, 1, 0, false, None),
            absent(W, Some(2)),
        ];
        let plan = v.plan_read(
            &snaps,
            PuId(W),
            TaskId(2),
            None,
            SubMask::all(1),
            &[(PuId(X), TaskId(0)), (PuId(Y), TaskId(3))],
        );
        assert_eq!(plan.snarfers, vec![PuId(Y)]);
        assert_eq!(plan.vol_after, vec![PuId(Z), PuId(W), PuId(Y)]);
    }

    #[test]
    fn snarfing_disabled_yields_no_snarfers() {
        let snaps = [
            absent(X, Some(0)),
            absent(Y, Some(3)),
            snap(Z, Some(1), 1, 1, 0, false, None),
            absent(W, Some(2)),
        ];
        let plan = vcl().plan_read(
            &snaps,
            PuId(W),
            TaskId(2),
            None,
            SubMask::all(1),
            &[(PuId(Y), TaskId(3))],
        );
        assert!(plan.snarfers.is_empty());
    }

    // ---- Memory supply & positions -----------------------------------------

    #[test]
    fn no_version_means_memory_supplies() {
        let snaps = [
            absent(X, Some(0)),
            absent(Y, Some(3)),
            absent(Z, Some(1)),
            absent(W, Some(2)),
        ];
        let plan = vcl().plan_read(&snaps, PuId(W), TaskId(2), None, SubMask::all(1), &[]);
        assert_eq!(plan.fill, vec![(0, SupplySource::Memory)]);
        assert!(plan.arch);
        assert_eq!(plan.vol_after, vec![PuId(W)]);
    }

    #[test]
    fn younger_version_does_not_supply_older_load() {
        // Y/3 holds a version; X/0 loads. X precedes Y: memory supplies.
        let snaps = [
            absent(X, Some(0)),
            snap(Y, Some(3), 1, 1, 0, false, None),
            absent(Z, Some(1)),
            absent(W, Some(2)),
        ];
        let plan = vcl().plan_read(&snaps, PuId(X), TaskId(0), None, SubMask::all(1), &[]);
        assert_eq!(plan.fill, vec![(0, SupplySource::Memory)]);
    }

    #[test]
    fn head_task_supply_is_architectural() {
        // Head task (task 0 on X) supplies its uncommitted version: the
        // copy may set the A bit (§3.5.1).
        let snaps = [
            snap(X, Some(0), 1, 1, 0, false, None),
            absent(Y, Some(3)),
            absent(Z, Some(1)),
            absent(W, Some(2)),
        ];
        let plan = vcl().plan_read(
            &snaps,
            PuId(Z),
            TaskId(1),
            Some(TaskId(0)),
            SubMask::all(1),
            &[],
        );
        assert_eq!(plan.fill, vec![(0, SupplySource::Cache(PuId(X)))]);
        assert!(plan.arch);
    }

    // ---- Writeback planning --------------------------------------------------

    #[test]
    fn committed_castout_writes_only_winning_subblocks() {
        // X committed stored 0b11; Y (younger committed) stored 0b10.
        // Evicting X writes only sub-block 0.
        let snaps = [
            snap(X, Some(8), 0b11, 0b11, 0, true, Some(Y)),
            snap(Y, Some(9), 0b10, 0b10, 0, true, None),
            absent(Z, Some(4)),
            absent(W, Some(5)),
        ];
        let plan = vcl().plan_wback(&snaps, PuId(X));
        assert_eq!(plan.write_evicted, SubMask::single(0));
        assert_eq!(plan.flush, vec![(PuId(Y), SubMask::single(1))]);
        assert!(plan.purge.contains(&PuId(X)) && plan.purge.contains(&PuId(Y)));
        assert!(plan.vol_after.is_empty());
    }

    #[test]
    fn active_castout_supersedes_committed_subblocks() {
        // Head task's dirty line (sub-block 0) evicts; a committed line
        // also stored sub-blocks 0 and 1. Sub-block 0 is superseded (no
        // flush); sub-block 1 still flushes.
        let snaps = [
            snap(X, Some(8), 0b11, 0b11, 0, true, None),
            absent(Y, Some(3)),
            snap(Z, Some(1), 0b01, 0b01, 0, false, None),
            absent(W, Some(2)),
        ];
        let plan = vcl().plan_wback(&snaps, PuId(Z));
        assert_eq!(plan.write_evicted, SubMask::single(0));
        assert_eq!(plan.flush, vec![(PuId(X), SubMask::single(1))]);
        assert!(plan.purge.contains(&PuId(Z)));
        assert!(plan.vol_after.is_empty());
    }
}
