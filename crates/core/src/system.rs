//! The complete SVC memory system: private caches, snooping bus, VCL,
//! MSHRs, writeback buffers and the next level of memory.

use smallvec::SmallVec;
use svc_mem::{Backing, Bus, CacheArray, MshrFile, WayRef, WritebackBuffer};
use svc_sim::epoch::EpochPool;
use svc_sim::fault::{FaultEvent, FaultSite, Faults};
use svc_sim::profile::{AccessProfile, Profiler};
use svc_sim::trace::{AccessOp, BusOp, Category, LineBits, TraceEvent, Tracer, VolOp};
use svc_types::{
    AccessError, Addr, Cycle, DataSource, InvariantViolation, LineId, LoadOutcome, MemGauges,
    MemStats, ModelCheckable, Mutation, PlanToken, PlannedOp, PuId, StateHasher, StoreOutcome,
    TaskAssignments, TaskId, VersionedMemory, Violation, Word,
};

use crate::config::SvcConfig;
use crate::line::{LineState, SvcLine};
use crate::mask::SubMask;
use crate::plan::{PlanView, ReadMissPlan, Residency, SvcPlan, WriteMissPlan};
use crate::snapshot::LineSnapshot;
use crate::vcl::{ReadPlan, SupplySource, Vcl, WbackPlan, WritePlan};
use crate::vol::{order_vol, vol_trace_entries};

/// The state a detached planning epoch owns: the caches, the assignment
/// table, and the (copyable) VCL and configuration. Built by
/// [`SvcSystem::plan_batch`] via ownership swap, threaded through the
/// worker pool behind an `Arc`, and swapped back at the barrier.
pub(crate) struct PlanCtx {
    caches: Vec<CacheArray<SvcLine>>,
    assignments: TaskAssignments,
    vcl: Vcl,
    config: SvcConfig,
}

impl PlanCtx {
    fn view(&self) -> PlanView<'_> {
        PlanView {
            caches: &self.caches,
            assignments: &self.assignments,
            vcl: self.vcl,
            config: &self.config,
        }
    }
}

/// Plans one predicted access against a view of the current state.
fn plan_token(view: &PlanView<'_>, pu: PuId, op: PlannedOp) -> PlanToken {
    let plan = match op {
        PlannedOp::Load(addr) => view.plan_load(pu, addr),
        PlannedOp::Store(addr, _) => view.plan_store(pu, addr),
    };
    let g = view.config.geometry;
    PlanToken {
        set: g.set_index(g.line_of(op.addr())),
        payload: Box::new(plan),
    }
}

/// The worker-pool job function: one token per predicted access.
fn plan_job(ctx: &PlanCtx, job: &(PuId, PlannedOp)) -> PlanToken {
    plan_token(&ctx.view(), job.0, job.1)
}

/// Lazily-created planning pool. Explicit `Debug`/`Clone` because thread
/// handles are neither: a cloned system starts with a fresh (empty)
/// planner, which only costs re-spawning workers on its next
/// `plan_batch` — planning state never affects simulation results.
#[derive(Default)]
struct Planner {
    pool: Option<EpochPool<PlanCtx, (PuId, PlannedOp), PlanToken>>,
}

impl std::fmt::Debug for Planner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Planner")
            .field("workers", &self.pool.as_ref().map(|p| p.workers()))
            .finish()
    }
}

impl Clone for Planner {
    fn clone(&self) -> Planner {
        Planner { pool: None }
    }
}

/// Data gathered for one fill, kept inline for paper-sized lines: per
/// filled sub-block `(index, from_cache)` metadata plus a flat word
/// buffer holding `w` words per entry in the same order.
struct GatheredFill {
    meta: SmallVec<(usize, bool), 8>,
    words: SmallVec<Word, 8>,
    w: usize,
}

impl GatheredFill {
    /// `(sub-block, its words, from_cache)` per filled sub-block.
    fn iter(&self) -> impl Iterator<Item = (usize, &[Word], bool)> {
        self.meta
            .iter()
            .enumerate()
            .map(move |(i, &(j, from_cache))| {
                (j, &self.words[i * self.w..(i + 1) * self.w], from_cache)
            })
    }

    /// Whether sub-block `j`'s data came from another cache.
    fn came_from_cache(&self, j: usize) -> Option<bool> {
        self.meta
            .iter()
            .find(|&&(fj, _)| fj == j)
            .map(|&(_, from_cache)| from_cache)
    }
}

/// The Speculative Versioning Cache memory system (paper Figure 5).
///
/// One private L1 cache per processing unit, kept consistent — and
/// speculatively versioned — by the [`Vcl`] over a snooping bus. Implements
/// [`VersionedMemory`]; see the crate docs for a usage example and the
/// paper-to-code map.
#[derive(Debug, Clone)]
pub struct SvcSystem {
    config: SvcConfig,
    vcl: Vcl,
    caches: Vec<CacheArray<SvcLine>>,
    bus: Bus,
    backing: Backing,
    mshrs: Vec<MshrFile>,
    wbufs: Vec<WritebackBuffer>,
    assignments: TaskAssignments,
    stats: MemStats,
    tracer: Tracer,
    faults: Faults,
    profiler: Profiler,
    planner: Planner,
}

impl SvcSystem {
    /// Builds an SVC from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (see
    /// [`SvcConfig::validate`]).
    pub fn new(config: SvcConfig) -> SvcSystem {
        config.validate();
        let t = config.timing;
        SvcSystem {
            vcl: Vcl {
                hybrid_update: config.hybrid_update,
                snarfing: config.snarfing,
                trust_stale: config.stale_bit,
                update_limit: config.update_limit,
                retain_flushed: config.retain_flushed,
            },
            caches: (0..config.num_pus)
                .map(|_| CacheArray::new(config.geometry))
                .collect(),
            bus: Bus::pipelined(t.bus_txn_cycles, (t.bus_txn_cycles - 1).max(1)),
            backing: match config.l2 {
                Some(l2) => Backing::with_l2(l2),
                None => Backing::flat(t.memory_cycles),
            },
            mshrs: (0..config.num_pus)
                .map(|_| MshrFile::new(config.mshr_entries, config.mshr_combine))
                .collect(),
            wbufs: (0..config.num_pus)
                .map(|_| WritebackBuffer::new(config.wb_entries, t.bus_txn_cycles))
                .collect(),
            assignments: TaskAssignments::new(config.num_pus),
            stats: MemStats::default(),
            tracer: Tracer::disabled(),
            faults: Faults::disabled(),
            profiler: Profiler::disabled(),
            planner: Planner::default(),
            config,
        }
    }

    /// A read-only planning view of the live system (shared with the
    /// detached [`PlanCtx`] the worker pool uses).
    fn plan_view(&self) -> PlanView<'_> {
        PlanView {
            caches: &self.caches,
            assignments: &self.assignments,
            vcl: self.vcl,
            config: &self.config,
        }
    }

    /// Attaches a cycle-accounting profiler handle. Misses report their
    /// latency decomposition (MSHR stall, arbitration wait, bus transfer,
    /// memory penalty) to it so the engine can attribute the PU's blocked
    /// cycles to the right buckets. A disabled profiler costs one branch
    /// per miss.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Attaches a tracing handle to the whole memory system: the bus, the
    /// per-PU MSHR files and writeback buffers, and the system's own
    /// line/VOL/VCL/access emitters all share it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.bus.set_tracer(tracer.clone());
        for (i, m) in self.mshrs.iter_mut().enumerate() {
            m.set_tracer(tracer.clone(), PuId(i));
        }
        for (i, w) in self.wbufs.iter_mut().enumerate() {
            w.set_tracer(tracer.clone(), PuId(i));
        }
        self.tracer = tracer;
    }

    /// Attaches a fault injector to the whole memory system: the bus, the
    /// per-PU MSHR files and writeback buffers, and the system's own
    /// eviction/VCL/fill hook sites all share it. A disabled injector
    /// costs one branch per hook site.
    pub fn set_faults(&mut self, faults: Faults) {
        self.bus.set_faults(faults.clone());
        for m in &mut self.mshrs {
            m.set_faults(faults.clone());
        }
        for w in &mut self.wbufs {
            w.set_faults(faults.clone());
        }
        self.faults = faults;
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SvcConfig {
        &self.config
    }

    /// The current task-assignment table (for inspection).
    pub fn assignments(&self) -> &TaskAssignments {
        &self.assignments
    }

    /// The derived five-state classification of `pu`'s copy of the line
    /// containing `addr` (for tests and tracing).
    pub fn line_state(&self, pu: PuId, addr: Addr) -> LineState {
        let line = self.config.geometry.line_of(addr);
        match self.caches[pu.index()].find(line) {
            Some(r) => self.caches[pu.index()].slot(r).state(),
            None => LineState::Invalid,
        }
    }

    /// The reconstructed Version Ordering List for the line containing
    /// `addr` (for tests and tracing).
    pub fn vol_of(&self, addr: Addr) -> Vec<PuId> {
        order_vol(&self.snapshots(self.config.geometry.line_of(addr))).to_vec()
    }

    /// The word at `addr` as cached by `pu`, if the holding sub-block is
    /// valid there. Read-only; used by the inspection helpers and tests.
    pub fn peek_word(&self, pu: PuId, addr: Addr) -> Option<Word> {
        let g = self.config.geometry;
        let r = self.caches[pu.index()].find(g.line_of(addr))?;
        let l = self.caches[pu.index()].slot(r);
        if l.valid.contains(g.subblock_of(addr)) {
            Some(l.data[g.offset(addr)])
        } else {
            None
        }
    }

    /// States of every slot of `pu`'s cache (for the census).
    pub(crate) fn line_states_of(&self, pu: PuId) -> Vec<LineState> {
        self.caches[pu.index()].iter().map(|l| l.state()).collect()
    }

    /// Snooped snapshots of `line` (for the inspection helpers).
    pub(crate) fn snapshots_of(&self, line: LineId) -> Vec<LineSnapshot> {
        self.snapshots(line).to_vec()
    }

    // -----------------------------------------------------------------
    // Trace emission helpers
    // -----------------------------------------------------------------

    /// `pu`'s current bits for `line` (all-zero if not resident).
    fn line_bits(&self, pu: PuId, line: LineId) -> LineBits {
        match self.caches[pu.index()].find(line) {
            Some(r) => self.caches[pu.index()].slot(r).bits(),
            None => LineBits::default(),
        }
    }

    /// Snapshot of every PU's bits for `line`, taken only when the `line`
    /// category is traced (`None` keeps the disabled path allocation-free).
    fn capture_line_bits(&self, line: LineId) -> Option<Vec<LineBits>> {
        self.tracer.enabled(Category::Line).then(|| {
            (0..self.config.num_pus)
                .map(|i| self.line_bits(PuId(i), line))
                .collect()
        })
    }

    /// Emits one `LineTransition` per PU whose bits for `line` changed
    /// since `before` was captured.
    fn emit_line_transitions(&self, line: LineId, before: Option<Vec<LineBits>>, now: Cycle) {
        let Some(before) = before else { return };
        for (i, from) in before.into_iter().enumerate() {
            let pu = PuId(i);
            let to = self.line_bits(pu, line);
            if from != to {
                self.tracer
                    .emit(now, Category::Line, || TraceEvent::LineTransition {
                        pu,
                        line,
                        from,
                        to,
                    });
            }
        }
    }

    /// Emits the current VOL of `line` after a splice or purge.
    fn emit_vol(&self, line: LineId, op: VolOp, now: Cycle) {
        if !self.tracer.enabled(Category::Vol) {
            return;
        }
        let order = vol_trace_entries(&self.snapshots(line));
        self.tracer
            .emit(now, Category::Vol, || TraceEvent::VolReorder {
                line,
                op,
                order,
            });
    }

    /// Emits a fault-injection event for the `fault` category.
    fn emit_fault(
        &self,
        site: FaultSite,
        pu: Option<PuId>,
        line: Option<LineId>,
        penalty: u64,
        now: Cycle,
    ) {
        self.tracer.emit(now, Category::Fault, || {
            TraceEvent::Fault(FaultEvent {
                site,
                pu,
                line,
                penalty,
            })
        });
    }

    /// Emits a completed access for the `access` category.
    #[allow(clippy::too_many_arguments)]
    fn emit_access(
        &self,
        pu: PuId,
        task: TaskId,
        op: AccessOp,
        addr: Addr,
        source: &'static str,
        done_at: Cycle,
        now: Cycle,
    ) {
        self.tracer
            .emit(now, Category::Access, || TraceEvent::Access {
                pu,
                task,
                op,
                addr,
                source,
                done_at,
            });
    }

    // -----------------------------------------------------------------
    // Snapshots and plan application
    // -----------------------------------------------------------------

    pub(crate) fn snapshots(&self, line: LineId) -> SmallVec<LineSnapshot, 8> {
        self.plan_view().snapshots(line)
    }

    /// Words of sub-block `j` of `pu`'s copy of `line`.
    fn read_subblock(&self, pu: PuId, line: LineId, j: usize) -> SmallVec<Word, 8> {
        let r = self.caches[pu.index()]
            .find(line)
            .expect("supplier holds the line");
        let l = self.caches[pu.index()].slot(r);
        let w = self.config.geometry.words_per_subblock();
        l.data[j * w..(j + 1) * w].iter().copied().collect()
    }

    /// Gathers the data for a fill: `(sub-block, words, from_cache)`.
    fn gather_fill(&mut self, line: LineId, fill: &[(usize, SupplySource)]) -> GatheredFill {
        let w = self.config.geometry.words_per_subblock();
        let wpl = self.config.geometry.words_per_line();
        let mut gathered = GatheredFill {
            meta: SmallVec::new(),
            words: SmallVec::new(),
            w,
        };
        for &(j, src) in fill {
            match src {
                SupplySource::Cache(q) => {
                    let r = self.caches[q.index()]
                        .find(line)
                        .expect("supplier holds the line");
                    let l = self.caches[q.index()].slot(r);
                    gathered
                        .words
                        .extend(l.data[j * w..(j + 1) * w].iter().copied());
                    gathered.meta.push((j, true));
                }
                SupplySource::Memory => {
                    for k in 0..w {
                        gathered
                            .words
                            .push(self.backing.read(line.word(j * w + k, wpl)));
                    }
                    gathered.meta.push((j, false));
                }
            }
        }
        gathered
    }

    /// Installs a gathered fill into one cache slot. `set_load` is the
    /// sub-block whose L bit the requesting load sets; snarfers pass
    /// `None`. With `fresh`, the slot is reset first (refetch of a
    /// committed/stale line); otherwise the fill merges into a
    /// partially-valid active line, and the line stays architectural only
    /// if it already was.
    #[allow(clippy::too_many_arguments)]
    fn install_fill(
        &mut self,
        pu: PuId,
        slot: WayRef,
        line: LineId,
        data: &GatheredFill,
        arch: bool,
        set_load: Option<usize>,
        fresh: bool,
    ) {
        let w = self.config.geometry.words_per_subblock();
        let wpl = self.config.geometry.words_per_line();
        let cache = &mut self.caches[pu.index()];
        let l = cache.slot_mut(slot);
        if fresh {
            *l = SvcLine::invalid(wpl);
        }
        if l.data.len() != wpl {
            l.data = vec![Word::ZERO; wpl];
        }
        let was_arch = l.arch || !l.is_valid();
        l.line = Some(line);
        for (j, words, _) in data.iter() {
            for (k, word) in words.iter().enumerate() {
                l.data[j * w + k] = *word;
            }
            l.valid.set(j);
        }
        l.committed = false;
        l.arch = arch && was_arch;
        if let Some(j) = set_load {
            if !l.store.contains(j) && !Mutation::LoadSkipsLBit.enabled() {
                l.load.set(j);
            }
        }
        cache.touch(slot);
    }

    /// Writes `pu`'s data for `mask` sub-blocks to memory (a committed
    /// version flush) and charges the writeback buffer.
    fn flush_to_memory(&mut self, pu: PuId, line: LineId, mask: SubMask, now: Cycle) {
        let w = self.config.geometry.words_per_subblock();
        let wpl = self.config.geometry.words_per_line();
        for j in mask.iter() {
            let words = self.read_subblock(pu, line, j);
            for (k, word) in words.into_iter().enumerate() {
                self.backing.write(line.word(j * w + k, wpl), word);
            }
        }
        self.wbufs[pu.index()].push(now);
        self.stats.writebacks += 1;
    }

    fn invalidate_line(&mut self, pu: PuId, line: LineId) {
        if let Some(r) = self.caches[pu.index()].find(line) {
            self.caches[pu.index()].slot_mut(r).invalidate();
        }
    }

    /// Rewrites the VOL pointers of every copy of `line` to match `order`
    /// (members no longer valid are skipped).
    fn rewrite_pointers(&mut self, line: LineId, order: &[PuId]) {
        let mut holders: SmallVec<PuId, 8> = order
            .iter()
            .copied()
            .filter(|q| self.caches[q.index()].find(line).is_some())
            .collect();
        if Mutation::VolSpliceBackwards.enabled() {
            holders.reverse();
        }
        let sole = holders.len() == 1;
        for (i, &q) in holders.iter().enumerate() {
            let r = self.caches[q.index()].find(line).expect("holder");
            let l = self.caches[q.index()].slot_mut(r);
            l.next = holders.get(i + 1).copied();
            l.exclusive = sole;
        }
    }

    /// Re-establishes the T-bit invariant over the final membership: the
    /// most recent version and every younger copy are not stale; everything
    /// older is (§3.4.3). Also repairs T after squashes (§3.5).
    fn recompute_stale(&mut self, line: LineId) {
        if !self.config.stale_bit {
            return;
        }
        let snaps = self.snapshots(line);
        let vol = order_vol(&snaps);
        let has_store = |pu: PuId| {
            let r = self.caches[pu.index()].find(line).expect("member");
            !self.caches[pu.index()].slot(r).store.is_empty()
        };
        // With a version member present, position decides: the most recent
        // version and the copies after it (necessarily copies of it, kept
        // consistent by the invalidation walks) are fresh, everything
        // older is stale. With *no* version member — the versions were
        // flushed/purged to memory — staleness must not be cleared: a copy
        // of an older architectural value may still be around, and only a
        // refetch (which installs a fresh line) makes it current again.
        let last_version = vol.iter().rposition(|&q| has_store(q));
        let Some(k) = last_version else { return };
        for (i, &q) in vol.iter().enumerate() {
            let r = self.caches[q.index()].find(line).expect("member");
            self.caches[q.index()].slot_mut(r).stale = i < k;
        }
    }

    /// Counts purged committed versions (store data superseded without
    /// writeback) and invalidates the purge set.
    fn apply_purge(&mut self, line: LineId, purge: &[PuId], flushed: &[(PuId, SubMask)]) {
        for &q in purge {
            if let Some(r) = self.caches[q.index()].find(line) {
                let l = self.caches[q.index()].slot(r);
                let flushed_mask = flushed
                    .iter()
                    .find(|&&(p, _)| p == q)
                    .map(|&(_, m)| m)
                    .unwrap_or(SubMask::EMPTY);
                if !l.store.minus(flushed_mask).is_empty() {
                    self.stats.purged_versions += 1;
                }
            }
            self.invalidate_line(q, line);
        }
    }

    // -----------------------------------------------------------------
    // Replacement
    // -----------------------------------------------------------------

    /// Ensures `pu` has a slot for `line`, evicting a victim if necessary.
    /// Returns the slot and the cycle by which any eviction traffic is
    /// done.
    ///
    /// Victim preference (paper §3.2.5, §3.8.1): an invalid way, then a
    /// passive-clean way (free), then a passive-dirty way (BusWback), and
    /// only for the head task an active way. A speculative (non-head)
    /// cache whose set holds only active lines must stall.
    fn ensure_resident(
        &mut self,
        pu: PuId,
        line: LineId,
        now: Cycle,
    ) -> Result<(WayRef, Cycle), AccessError> {
        if let Some(r) = self.caches[pu.index()].find(line) {
            return Ok((r, now));
        }
        let is_head = self.assignments.head() == Some(pu);
        let ways = self.caches[pu.index()].ways_by_lru(line);
        let classify = |l: &SvcLine| l.state();
        let pick = |want: &[LineState]| {
            ways.iter()
                .copied()
                .find(|&r| want.contains(&classify(self.caches[pu.index()].slot(r))))
        };
        // Fault hook: a forced eviction prefers a passive-dirty victim —
        // legal (its committed data is written back), but it turns a free
        // or clean castout into bus writeback traffic.
        let forced = if self.faults.is_active() {
            self.faults
                .inject(FaultSite::ForcedEvict)
                .and_then(|penalty| pick(&[LineState::PassiveDirty]).map(|r| (r, penalty)))
        } else {
            None
        };
        if let Some((_, penalty)) = forced {
            self.emit_fault(FaultSite::ForcedEvict, Some(pu), Some(line), penalty, now);
        }
        let victim = forced
            .map(|(r, _)| r)
            .or_else(|| pick(&[LineState::Invalid]))
            .or_else(|| pick(&[LineState::PassiveClean]))
            .or_else(|| pick(&[LineState::PassiveDirty]))
            .or_else(|| {
                if is_head {
                    pick(&[LineState::ActiveClean]).or_else(|| pick(&[LineState::ActiveDirty]))
                } else {
                    None
                }
            });
        let Some(r) = victim else {
            self.stats.replacement_stalls += 1;
            return Err(AccessError::ReplacementStall {
                pu,
                addr: line.first_word(self.config.geometry.words_per_line()),
            });
        };
        let state = self.caches[pu.index()].slot(r).state();
        let mut done = now;
        match state {
            LineState::Invalid | LineState::PassiveClean | LineState::ActiveClean => {
                // Clean castout: no bus request (§3.8.1).
            }
            LineState::PassiveDirty | LineState::ActiveDirty => {
                let vline = self.caches[pu.index()]
                    .slot(r)
                    .line
                    .expect("dirty line has a tag");
                done = self.do_wback(pu, vline, now);
            }
        }
        let wpl = self.config.geometry.words_per_line();
        let slot = self.caches[pu.index()].slot_mut(r);
        slot.invalidate();
        if slot.data.len() != wpl {
            // Freshly-constructed slots carry no storage yet.
            slot.data = vec![Word::ZERO; wpl];
        }
        slot.line = Some(line);
        Ok((r, done))
    }

    /// Applies a precomputed [`Residency`] decision: the redeemed-plan
    /// counterpart of [`ensure_resident`](Self::ensure_resident)'s apply
    /// half. Only reachable with faults inactive (plans are never
    /// produced otherwise), so the ForcedEvict hook has no arm here, and
    /// only for resident lines or clean victims (dirty victims fall back
    /// to the inline path), so there is no wback arm either.
    fn apply_residency(&mut self, pu: PuId, line: LineId, residency: Residency) -> WayRef {
        match residency {
            Residency::Resident(r) => {
                debug_assert_eq!(self.caches[pu.index()].find(line), Some(r));
                r
            }
            Residency::Claim(r) => {
                debug_assert_eq!(self.caches[pu.index()].find(line), None);
                debug_assert!(matches!(
                    self.caches[pu.index()].slot(r).state(),
                    LineState::Invalid | LineState::PassiveClean | LineState::ActiveClean
                ));
                let wpl = self.config.geometry.words_per_line();
                let slot = self.caches[pu.index()].slot_mut(r);
                slot.invalidate();
                if slot.data.len() != wpl {
                    slot.data = vec![Word::ZERO; wpl];
                }
                slot.line = Some(line);
                r
            }
        }
    }

    /// Executes a BusWback transaction for `pu`'s dirty copy of `line`.
    fn do_wback(&mut self, pu: PuId, line: LineId, now: Cycle) -> Cycle {
        let snaps = self.snapshots(line);
        let plan = self.vcl.plan_wback(&snaps, pu);
        self.do_wback_with(pu, line, &plan, now)
    }

    /// Applies an already-computed BusWback plan (shared by the inline
    /// path above and the precomputed [`Residency::Claim`] path).
    fn do_wback_with(&mut self, pu: PuId, line: LineId, plan: &WbackPlan, now: Cycle) -> Cycle {
        self.tracer.emit(now, Category::Vcl, || {
            TraceEvent::VclPlan(plan.trace_summary(pu, self.assignments.task_of(pu), line))
        });
        let before = self.capture_line_bits(line);
        let grant = self
            .bus
            .transact_as(BusOp::Wback, Some(pu), Some(line), now, 0);
        for &(q, mask) in &plan.flush {
            self.flush_to_memory(q, line, mask, now);
        }
        // The evicted data itself.
        if !plan.write_evicted.is_empty() {
            self.flush_to_memory(pu, line, plan.write_evicted, now);
        }
        self.apply_purge(line, &plan.purge, &plan.flush);
        if !plan.purge.is_empty() {
            self.emit_vol(line, VolOp::Purge, now);
        }
        self.invalidate_line(pu, line);
        self.rewrite_pointers(line, &plan.vol_after);
        self.recompute_stale(line);
        self.emit_vol(line, VolOp::Splice, now);
        self.emit_line_transitions(line, before, now);
        grant.done
    }

    // -----------------------------------------------------------------
    // The BusRead / BusWrite miss paths
    // -----------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn apply_read_plan(
        &mut self,
        plan: &ReadPlan,
        pu: PuId,
        line: LineId,
        slot: WayRef,
        requested: usize,
        fresh: bool,
        now: Cycle,
    ) -> DataSource {
        let data = self.gather_fill(line, &plan.fill);
        for &(q, mask) in &plan.flush {
            self.flush_to_memory(q, line, mask, now);
        }
        self.apply_purge(line, &plan.purge, &plan.flush);
        // §3.8.1 optimization: flushed lines demote to architectural
        // passive-clean copies instead of leaving the cache.
        for &q in &plan.demote {
            if let Some(r) = self.caches[q.index()].find(line) {
                let l = self.caches[q.index()].slot_mut(r);
                l.store = SubMask::EMPTY;
                l.arch = true;
            }
        }
        // Install the fill in the requestor (and snarfers).
        self.install_fill(pu, slot, line, &data, plan.arch, Some(requested), fresh);
        for &q in &plan.snarfers {
            // Snarf only into a free way; never evict for a snarf.
            let r = self.caches[q.index()].victim_way(line);
            if self.caches[q.index()].slot(r).state() == LineState::Invalid {
                self.install_fill(q, r, line, &data, plan.arch, None, true);
                self.stats.snarfs += 1;
            }
        }
        self.rewrite_pointers(line, &plan.vol_after);
        self.recompute_stale(line);
        // Classify the requested sub-block's source for miss accounting.
        let from_cache = data
            .came_from_cache(requested)
            .expect("requested sub-block is in the fill");
        if from_cache {
            self.stats.cache_transfers += 1;
            DataSource::Transfer
        } else {
            self.stats.next_level_fills += 1;
            DataSource::NextLevel
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_write_plan(
        &mut self,
        plan: &WritePlan,
        pu: PuId,
        line: LineId,
        slot: WayRef,
        j: usize,
        off: usize,
        value: Word,
        fresh: bool,
        now: Cycle,
    ) -> Option<Violation> {
        let data = self.gather_fill(line, &plan.fill);
        for &(q, mask) in &plan.flush {
            self.flush_to_memory(q, line, mask, now);
        }
        self.apply_purge(line, &plan.purge, &plan.flush);
        // Invalidate stale copies in the range (partial, per sub-block).
        for &(q, mask) in &plan.invalidate {
            if q == pu || Mutation::StoreSkipsInvalidation.enabled() {
                continue;
            }
            if let Some(r) = self.caches[q.index()].find(line) {
                self.caches[q.index()]
                    .slot_mut(r)
                    .invalidate_subblocks(mask);
            }
        }
        // Hybrid update: push the stored word into surviving copies.
        for &q in &plan.update {
            if let Some(r) = self.caches[q.index()].find(line) {
                let l = self.caches[q.index()].slot_mut(r);
                if l.valid.contains(j) {
                    l.data[off] = value;
                    l.arch = false;
                }
            }
        }
        // Install the store in the requestor.
        let w = self.config.geometry.words_per_subblock();
        let cache = &mut self.caches[pu.index()];
        let l = cache.slot_mut(slot);
        if fresh {
            let words = l.data.len();
            *l = SvcLine::invalid(words);
        }
        l.line = Some(line);
        for (fj, words, _) in data.iter() {
            for (k, word) in words.iter().enumerate() {
                l.data[fj * w + k] = *word;
            }
            l.valid.set(fj);
        }
        l.data[off] = value;
        l.valid.set(j);
        l.store.set(j);
        // A one-word store into a wider versioning block *consumes* the
        // block's other words (the new version is built on the closest
        // previous version's content), so the dependence must be recorded
        // exactly like a load's: an older task's later store to this
        // block invalidates the consumed words and must squash us, or the
        // committed winner would carry stale words (DESIGN.md §5.6).
        if w > 1 {
            l.load.set(j);
        }
        l.committed = false;
        l.arch = false;
        cache.touch(slot);
        self.rewrite_pointers(line, &plan.vol_after);
        self.recompute_stale(line);
        // Report the oldest violated task, if any.
        if plan.victims.is_empty() {
            None
        } else {
            self.stats.violations += 1;
            let victim = plan
                .victims
                .iter()
                .map(|&(_, t)| t)
                .min()
                .expect("non-empty");
            Some(Violation {
                victim,
                addr: line.first_word(self.config.geometry.words_per_line()),
            })
        }
    }

    /// Head task's id, if any task is running.
    fn head_task(&self) -> Option<TaskId> {
        self.plan_view().head_task()
    }

    // -----------------------------------------------------------------
    // Watchdog access and fault drills
    // -----------------------------------------------------------------

    /// Distinct tags of lines validly held by any cache, sorted (for the
    /// invariant watchdog).
    pub(crate) fn resident_lines(&self) -> Vec<LineId> {
        let mut lines: Vec<LineId> = Vec::new();
        for cache in &self.caches {
            for l in cache.iter() {
                if let Some(id) = l.line {
                    if l.is_valid() {
                        lines.push(id);
                    }
                }
            }
        }
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Whether `pu`'s copy of `line` has the exclusive (X) bit set.
    pub(crate) fn line_exclusive(&self, pu: PuId, line: LineId) -> bool {
        match self.caches[pu.index()].find(line) {
            Some(r) => self.caches[pu.index()].slot(r).exclusive,
            None => false,
        }
    }

    /// Uncommitted valid lines still in `pu`'s cache (the post-squash
    /// cleanliness check: there must be none).
    pub(crate) fn speculative_lines_of(&self, pu: PuId) -> Vec<LineId> {
        self.caches[pu.index()]
            .iter()
            .filter(|l| l.is_valid() && !l.committed)
            .map(|l| l.line.expect("valid line has a tag"))
            .collect()
    }

    /// Number of uncommitted valid lines in `pu`'s cache (the gauge the
    /// profiler samples every period — counted, not collected).
    pub(crate) fn speculative_line_count(&self, pu: PuId) -> usize {
        self.caches[pu.index()]
            .iter()
            .filter(|l| l.is_valid() && !l.committed)
            .count()
    }

    /// Deliberately corrupts the state bits of `pu`'s copy of the line
    /// containing `addr` into an illegal combination (a store bit on an
    /// invalid sub-block, or a load bit on a committed line). Returns
    /// `false` if `pu` holds no valid copy. **Watchdog drill only** — the
    /// resulting state violates the protocol by construction.
    #[doc(hidden)]
    pub fn fault_flip_state_bit(&mut self, pu: PuId, addr: Addr) -> bool {
        let g = self.config.geometry;
        let line = g.line_of(addr);
        let j = g.subblock_of(addr);
        let Some(r) = self.caches[pu.index()].find(line) else {
            return false;
        };
        let l = self.caches[pu.index()].slot_mut(r);
        if !l.is_valid() {
            return false;
        }
        if !l.valid.contains(j) {
            l.store.set(j);
        } else {
            l.committed = true;
            l.load.set(j);
        }
        true
    }

    /// Deliberately splices the VOL of the line containing `addr` into a
    /// cycle: the youngest member's pointer is bent back to the oldest.
    /// Returns `false` if no cache holds the line. **Watchdog drill
    /// only.**
    #[doc(hidden)]
    pub fn fault_splice_vol(&mut self, addr: Addr) -> bool {
        let line = self.config.geometry.line_of(addr);
        let vol = order_vol(&self.snapshots(line));
        let (Some(&first), Some(&last)) = (vol.first(), vol.last()) else {
            return false;
        };
        let r = self.caches[last.index()].find(line).expect("VOL member");
        self.caches[last.index()].slot_mut(r).next = Some(first);
        true
    }

    /// Caches eligible to snarf a fill of `line`: no copy, a free way, and
    /// an assigned task.
    fn snarf_candidates(&self, line: LineId, exclude: PuId) -> SmallVec<(PuId, TaskId), 8> {
        self.plan_view().snarf_candidates(line, exclude)
    }

    /// [`VersionedMemory::load`]'s body, shared by the plain entry point
    /// (`pre = None`) and the plan-redeeming one. A `pre` produced by
    /// `plan_batch` against exactly this state replaces the residency
    /// decision and the VCL planning on the miss path; every mutation,
    /// timing step and trace emission is the same code either way.
    fn load_impl(
        &mut self,
        pu: PuId,
        addr: Addr,
        now: Cycle,
        pre: Option<ReadMissPlan>,
    ) -> Result<LoadOutcome, AccessError> {
        let task = self
            .assignments
            .task_of(pu)
            .ok_or(AccessError::NoTask(pu))?;
        self.stats.loads += 1;
        let g = self.config.geometry;
        let line = g.line_of(addr);
        let j = g.subblock_of(addr);
        let off = g.offset(addr);

        // Local paths first: active hit, or non-stale passive-clean reuse.
        if let Some(r) = self.caches[pu.index()].find(line) {
            let l = self.caches[pu.index()].slot(r);
            if !l.committed && l.valid.contains(j) {
                let value = l.data[off];
                let from = l.bits();
                let l = self.caches[pu.index()].slot_mut(r);
                if !l.store.contains(j) && !Mutation::LoadSkipsLBit.enabled() {
                    l.load.set(j);
                }
                self.caches[pu.index()].touch(r);
                self.stats.local_hits += 1;
                let done_at = now + self.config.timing.hit_cycles;
                if self.tracer.enabled(Category::Line) {
                    let to = self.line_bits(pu, line);
                    if from != to {
                        self.tracer
                            .emit(now, Category::Line, || TraceEvent::LineTransition {
                                pu,
                                line,
                                from,
                                to,
                            });
                    }
                }
                self.emit_access(pu, task, AccessOp::Load, addr, "local", done_at, now);
                return Ok(LoadOutcome {
                    value,
                    done_at,
                    source: DataSource::LocalHit,
                });
            }
            if l.committed
                && self.config.stale_bit
                && !l.stale
                && l.store.is_empty()
                && l.valid.contains(j)
            {
                // §3.4.3 / §3.5.1: reuse a non-stale passive-clean copy by
                // resetting C and remembering it is architectural.
                let value = l.data[off];
                let from = l.bits();
                let l = self.caches[pu.index()].slot_mut(r);
                l.committed = false;
                l.arch = true;
                l.load = SubMask::single(j);
                self.caches[pu.index()].touch(r);
                self.stats.local_hits += 1;
                let done_at = now + self.config.timing.hit_cycles;
                if self.tracer.enabled(Category::Line) {
                    let to = self.line_bits(pu, line);
                    self.tracer
                        .emit(now, Category::Line, || TraceEvent::LineTransition {
                            pu,
                            line,
                            from,
                            to,
                        });
                }
                self.emit_access(pu, task, AccessOp::Load, addr, "local", done_at, now);
                return Ok(LoadOutcome {
                    value,
                    done_at,
                    source: DataSource::LocalHit,
                });
            }
        }

        // Miss: BusRead. A redeemed `pre` supplies the residency decision
        // and the VCL plan; the engine's conflict guard guarantees it was
        // computed against exactly this state, so both routes produce
        // identical values — the debug asserts below re-derive and
        // compare every precomputed product.
        let (slot, evict_done) = match pre {
            Some(ref p) => (self.apply_residency(pu, line, p.residency.clone()), now),
            None => self.ensure_resident(pu, line, now)?,
        };
        let l = self.caches[pu.index()].slot(slot);
        // A partially-valid *active* line keeps its sub-blocks; anything
        // else (fresh slot, committed or stale line) refills fully.
        let fresh = l.line != Some(line) || l.committed || l.valid.is_empty();
        let fill_mask = if fresh {
            SubMask::all(g.subblocks_per_line())
        } else {
            SubMask::all(g.subblocks_per_line()).minus(l.valid)
        };
        let plan = match pre {
            Some(p) => {
                debug_assert_eq!(p.fresh, fresh);
                debug_assert_eq!(p.fill_mask, fill_mask);
                debug_assert_eq!(
                    p.plan,
                    self.vcl.plan_read(
                        &self.snapshots(line),
                        pu,
                        task,
                        self.head_task(),
                        fill_mask,
                        &self.snarf_candidates(line, pu),
                    )
                );
                p.plan
            }
            None => {
                let snaps = self.snapshots(line);
                let candidates = self.snarf_candidates(line, pu);
                self.vcl
                    .plan_read(&snaps, pu, task, self.head_task(), fill_mask, &candidates)
            }
        };
        self.tracer.emit(now, Category::Vcl, || {
            TraceEvent::VclPlan(plan.trace_summary(pu, Some(task), line))
        });
        let before = self.capture_line_bits(line);
        let extra = if plan.flush.is_empty() {
            0
        } else {
            self.config.timing.commit_flush_extra
        };
        // Fault hook: the VCL takes extra cycles to answer this snoop.
        let vcl_extra = match self.faults.inject(FaultSite::VclDelay) {
            Some(p) => {
                self.emit_fault(FaultSite::VclDelay, Some(pu), Some(line), p, now);
                p
            }
            None => 0,
        };
        // The MSHR file limits outstanding misses; a combined miss shares
        // the in-flight fill and skips the bus.
        let t = self.config.timing;
        let est = t.bus_txn_cycles + t.memory_cycles;
        let mshr = self.mshrs[pu.index()].begin_miss(line, evict_done, est);
        let source = self.apply_read_plan(&plan, pu, line, slot, j, fresh, now);
        if !plan.purge.is_empty() {
            self.emit_vol(line, VolOp::Purge, now);
        }
        self.emit_vol(line, VolOp::Splice, now);
        self.emit_line_transitions(line, before, now);
        let done = if mshr.combined {
            // A combined miss rides the outstanding fill: no new bus
            // transaction, so its whole latency profiles as memory time.
            mshr.data_ready + vcl_extra
        } else {
            let request = evict_done + mshr.stalled + vcl_extra;
            let grant = self
                .bus
                .transact_as(BusOp::Read, Some(pu), Some(line), request, extra);
            let mem_penalty = match source {
                DataSource::NextLevel => {
                    let penalty = self
                        .backing
                        .fill_penalty(line, self.config.geometry.words_per_line());
                    // Fault hook: the next level answers late.
                    let jitter = match self.faults.inject(FaultSite::MemJitter) {
                        Some(j) => {
                            self.emit_fault(FaultSite::MemJitter, Some(pu), Some(line), j, now);
                            j
                        }
                        None => 0,
                    };
                    penalty + jitter
                }
                _ => 0,
            };
            if self.profiler.is_active() {
                self.profiler.note_access(
                    pu,
                    AccessProfile {
                        mshr_stall: mshr.stalled,
                        bus_wait: grant.start.since(request),
                        bus_transfer: grant.done.since(grant.start),
                        mem_latency: mem_penalty,
                    },
                );
            }
            grant.done + mem_penalty
        };
        let value = {
            let r = self.caches[pu.index()].find(line).expect("just installed");
            self.caches[pu.index()].slot(r).data[off]
        };
        let source_name = match source {
            DataSource::Transfer => "transfer",
            DataSource::NextLevel => "next-level",
            _ => "local",
        };
        self.emit_access(pu, task, AccessOp::Load, addr, source_name, done, now);
        Ok(LoadOutcome {
            value,
            done_at: done,
            source,
        })
    }

    /// [`VersionedMemory::store`]'s body; see [`SvcSystem::load_impl`]
    /// for the `pre` contract.
    fn store_impl(
        &mut self,
        pu: PuId,
        addr: Addr,
        value: Word,
        now: Cycle,
        pre: Option<WriteMissPlan>,
    ) -> Result<StoreOutcome, AccessError> {
        let task = self
            .assignments
            .task_of(pu)
            .ok_or(AccessError::NoTask(pu))?;
        self.stats.stores += 1;
        let g = self.config.geometry;
        let line = g.line_of(addr);
        let j = g.subblock_of(addr);
        let off = g.offset(addr);

        // Local path: this task already owns a version of this line (it
        // is Active Dirty, per the paper's FSM) AND no later task can have
        // copied it. The VOL pointer is exactly that local knowledge: a
        // non-null pointer means a successor copy or version exists, so
        // the store must be re-communicated on the bus or a successor
        // that read this line would keep stale data silently. (The
        // paper's FSM keeps Active-Dirty stores local unconditionally and
        // does not discuss this hazard; see DESIGN.md "Errata &
        // clarifications".) A sub-block the task has not touched can be
        // claimed locally only if the store covers it entirely or its
        // words are already valid.
        if let Some(r) = self.caches[pu.index()].find(line) {
            let l = self.caches[pu.index()].slot(r);
            let covers = self.config.geometry.words_per_subblock() == 1 || l.valid.contains(j);
            if !l.committed && !l.store.is_empty() && l.next.is_none() && covers {
                let wide = self.config.geometry.words_per_subblock() > 1;
                let from = l.bits();
                let l = self.caches[pu.index()].slot_mut(r);
                l.data[off] = value;
                l.valid.set(j);
                l.store.set(j);
                if wide {
                    l.load.set(j); // partial-coverage dependence (§5.6)
                }
                self.caches[pu.index()].touch(r);
                self.stats.local_hits += 1;
                let done_at = now + self.config.timing.hit_cycles;
                if self.tracer.enabled(Category::Line) {
                    let to = self.line_bits(pu, line);
                    if from != to {
                        self.tracer
                            .emit(now, Category::Line, || TraceEvent::LineTransition {
                                pu,
                                line,
                                from,
                                to,
                            });
                    }
                }
                self.emit_access(pu, task, AccessOp::Store, addr, "local", done_at, now);
                return Ok(StoreOutcome {
                    done_at,
                    violation: None,
                });
            }
            // X-bit silent store (Figure 16): the line is the only cached
            // copy anywhere, so no later task can have loaded it — no
            // violation is possible and no invalidation is needed. A
            // passive line's committed store data is pushed to the
            // writeback buffer first so the architectural version is not
            // lost if this task squashes.
            if l.exclusive && !l.stale && l.next.is_none() && covers {
                let committed = l.committed;
                let flush_mask = l.store;
                let from = l.bits();
                if committed && !flush_mask.is_empty() {
                    self.flush_to_memory(pu, line, flush_mask, now);
                }
                let wide = self.config.geometry.words_per_subblock() > 1;
                let l = self.caches[pu.index()].slot_mut(r);
                if committed {
                    l.committed = false;
                    l.load = SubMask::EMPTY;
                    l.store = SubMask::EMPTY;
                }
                l.data[off] = value;
                l.valid.set(j);
                l.store.set(j);
                if wide {
                    l.load.set(j); // partial-coverage dependence (§5.6)
                }
                l.arch = false;
                self.caches[pu.index()].touch(r);
                self.stats.local_hits += 1;
                let done_at = now + self.config.timing.hit_cycles;
                if self.tracer.enabled(Category::Line) {
                    let to = self.line_bits(pu, line);
                    self.tracer
                        .emit(now, Category::Line, || TraceEvent::LineTransition {
                            pu,
                            line,
                            from,
                            to,
                        });
                }
                self.emit_access(pu, task, AccessOp::Store, addr, "local", done_at, now);
                return Ok(StoreOutcome {
                    done_at,
                    violation: None,
                });
            }
        }

        // Miss: BusWrite with the store mask (§3.7). See `load_impl` for
        // the redeemed-`pre` contract; the debug asserts re-derive and
        // compare every precomputed product.
        let (slot, evict_done) = match pre {
            Some(ref p) => (self.apply_residency(pu, line, p.residency.clone()), now),
            None => self.ensure_resident(pu, line, now)?,
        };
        let l = self.caches[pu.index()].slot(slot);
        let fresh = l.line != Some(line) || l.committed || l.valid.is_empty();
        let store_mask = SubMask::single(j);
        let have = if fresh { SubMask::EMPTY } else { l.valid };
        // Write-allocate: fetch sub-blocks we do not hold. The stored
        // sub-block itself needs a fetch only if it is wider than the one
        // word this store writes.
        let mut fill_mask = SubMask::all(g.subblocks_per_line()).minus(have);
        if g.words_per_subblock() == 1 {
            fill_mask = fill_mask.minus(store_mask);
        }
        let plan = match pre {
            Some(p) => {
                debug_assert_eq!(p.fresh, fresh);
                debug_assert_eq!(p.fill_mask, fill_mask);
                debug_assert_eq!(
                    p.plan,
                    self.vcl
                        .plan_write(&self.snapshots(line), pu, task, store_mask, fill_mask)
                );
                p.plan
            }
            None => {
                let snaps = self.snapshots(line);
                self.vcl.plan_write(&snaps, pu, task, store_mask, fill_mask)
            }
        };
        self.tracer.emit(now, Category::Vcl, || {
            TraceEvent::VclPlan(plan.trace_summary(pu, Some(task), line))
        });
        let before = self.capture_line_bits(line);
        let extra = if plan.flush.is_empty() {
            0
        } else {
            self.config.timing.commit_flush_extra
        };
        // Fault hook: the VCL takes extra cycles to answer this snoop.
        let vcl_extra = match self.faults.inject(FaultSite::VclDelay) {
            Some(p) => {
                self.emit_fault(FaultSite::VclDelay, Some(pu), Some(line), p, now);
                p
            }
            None => 0,
        };
        let t = self.config.timing;
        let mshr = self.mshrs[pu.index()].begin_miss(line, evict_done, t.bus_txn_cycles);
        let violation = self.apply_write_plan(&plan, pu, line, slot, j, off, value, fresh, now);
        if !plan.purge.is_empty() {
            self.emit_vol(line, VolOp::Purge, now);
        }
        self.emit_vol(line, VolOp::Splice, now);
        self.emit_line_transitions(line, before, now);
        let done_at = if mshr.combined {
            // An outstanding transaction to this line carries the store's
            // mask as well; no separate bus transaction.
            mshr.data_ready + vcl_extra
        } else {
            let request = evict_done + mshr.stalled + vcl_extra;
            let grant = self
                .bus
                .transact_as(BusOp::Write, Some(pu), Some(line), request, extra);
            if self.profiler.is_active() {
                self.profiler.note_access(
                    pu,
                    AccessProfile {
                        mshr_stall: mshr.stalled,
                        bus_wait: grant.start.since(request),
                        bus_transfer: grant.done.since(grant.start),
                        mem_latency: 0,
                    },
                );
            }
            grant.done
        };
        self.emit_access(pu, task, AccessOp::Store, addr, "accepted", done_at, now);
        if let Some(v) = &violation {
            let victim = v.victim;
            self.tracer
                .emit(now, Category::Task, || TraceEvent::Violation {
                    pu,
                    task,
                    victim,
                    addr,
                });
        }
        Ok(StoreOutcome { done_at, violation })
    }
}

impl VersionedMemory for SvcSystem {
    fn num_pus(&self) -> usize {
        self.config.num_pus
    }

    fn assign(&mut self, pu: PuId, task: TaskId) {
        self.assignments.assign(pu, task);
    }

    fn plan_batch(&mut self, threads: usize, jobs: &[(PuId, PlannedOp)]) -> Option<Vec<PlanToken>> {
        // Planning pays off only when several PUs miss in the same cycle,
        // and is disabled under fault injection: the inline path draws
        // from per-site fault streams that planning must not perturb.
        if threads <= 1 || jobs.len() < 2 || self.faults.is_active() {
            return None;
        }
        let ctx = PlanCtx {
            caches: std::mem::take(&mut self.caches),
            // Placeholder only; `TaskAssignments::new` needs >= 1 PU.
            assignments: std::mem::replace(&mut self.assignments, TaskAssignments::new(1)),
            vcl: self.vcl,
            config: self.config,
        };
        let pool = self
            .planner
            .pool
            .get_or_insert_with(|| EpochPool::new(threads - 1, plan_job));
        let (ctx, tokens) = pool.run_epoch(ctx, jobs.to_vec());
        self.caches = ctx.caches;
        self.assignments = ctx.assignments;
        Some(tokens)
    }

    fn conflict_set(&self, addr: Addr) -> usize {
        let g = self.config.geometry;
        g.set_index(g.line_of(addr))
    }

    fn load(&mut self, pu: PuId, addr: Addr, now: Cycle) -> Result<LoadOutcome, AccessError> {
        self.load_impl(pu, addr, now, None)
    }

    fn load_planned(
        &mut self,
        pu: PuId,
        addr: Addr,
        now: Cycle,
        plan: PlanToken,
    ) -> Result<LoadOutcome, AccessError> {
        let pre = match plan.payload.downcast::<SvcPlan>().map(|b| *b) {
            Ok(SvcPlan::ReadMiss(p)) => Some(p),
            _ => None, // Fallback or mismatched kind: recompute inline.
        };
        self.load_impl(pu, addr, now, pre)
    }

    fn store(
        &mut self,
        pu: PuId,
        addr: Addr,
        value: Word,
        now: Cycle,
    ) -> Result<StoreOutcome, AccessError> {
        self.store_impl(pu, addr, value, now, None)
    }

    fn store_planned(
        &mut self,
        pu: PuId,
        addr: Addr,
        value: Word,
        now: Cycle,
        plan: PlanToken,
    ) -> Result<StoreOutcome, AccessError> {
        let pre = match plan.payload.downcast::<SvcPlan>().map(|b| *b) {
            Ok(SvcPlan::WriteMiss(p)) => Some(p),
            _ => None, // Fallback or mismatched kind: recompute inline.
        };
        self.store_impl(pu, addr, value, now, pre)
    }

    fn commit(&mut self, pu: PuId, now: Cycle) -> Cycle {
        let trace_lines = self.tracer.enabled(Category::Line);
        let tracer = self.tracer.clone();
        let done = if self.config.lazy_commit {
            // EC (§3.4): flash-set the C bit; writebacks happen lazily.
            for l in self.caches[pu.index()].iter_mut() {
                if l.is_valid() {
                    let from = l.bits();
                    l.committed = true;
                    if !Mutation::CommitKeepsLoadBits.enabled() {
                        l.load = SubMask::EMPTY;
                    }
                    if trace_lines {
                        let to = l.bits();
                        if from != to {
                            let line = l.line.expect("valid line has a tag");
                            tracer.emit(now, Category::Line, || TraceEvent::LineTransition {
                                pu,
                                line,
                                from,
                                to,
                            });
                        }
                    }
                }
            }
            now + 1
        } else {
            // Base (§3.2.4): write back every dirty line immediately and
            // invalidate the cache — the commit-serialization bottleneck.
            let lines: Vec<LineId> = self.caches[pu.index()]
                .iter()
                .filter(|l| l.is_valid() && !l.store.is_empty())
                .map(|l| l.line.expect("valid line has a tag"))
                .collect();
            let mut done = now + 1;
            for line in lines {
                let mask = {
                    let r = self.caches[pu.index()].find(line).expect("listed");
                    self.caches[pu.index()].slot(r).store
                };
                let grant = self
                    .bus
                    .transact_as(BusOp::Commit, Some(pu), Some(line), done, 0);
                self.flush_to_memory(pu, line, mask, done);
                done = grant.done;
            }
            for l in self.caches[pu.index()].iter_mut() {
                if trace_lines && l.is_valid() {
                    let from = l.bits();
                    let line = l.line.expect("valid line has a tag");
                    l.invalidate();
                    let to = l.bits();
                    tracer.emit(now, Category::Line, || TraceEvent::LineTransition {
                        pu,
                        line,
                        from,
                        to,
                    });
                } else {
                    l.invalidate();
                }
            }
            done
        };
        self.assignments.release(pu);
        done
    }

    fn squash(&mut self, pu: PuId) {
        self.squash_at(pu, Cycle::ZERO);
    }

    fn squash_at(&mut self, pu: PuId, now: Cycle) {
        let lazy = self.config.lazy_commit;
        let arch_bit = self.config.arch_bit;
        let trace_lines = self.tracer.enabled(Category::Line);
        let tracer = self.tracer.clone();
        let mut invalidated = 0;
        let mut retained = 0;
        for l in self.caches[pu.index()].iter_mut() {
            if !l.is_valid() {
                continue;
            }
            if lazy && l.committed {
                continue; // committed state survives squashes
            }
            let before = trace_lines.then(|| (l.bits(), l.line.expect("valid line has a tag")));
            if arch_bit && l.arch && l.store.is_empty() {
                // §3.5.1: architectural copies survive; they become
                // passive-clean so the next task re-validates via C.
                l.committed = true;
                l.load = SubMask::EMPTY;
                retained += 1;
            } else if Mutation::SquashKeepsLine.enabled() {
                retained += 1;
            } else {
                l.invalidate();
                invalidated += 1;
            }
            if let Some((from, line)) = before {
                let to = l.bits();
                if from != to {
                    tracer.emit(now, Category::Line, || TraceEvent::LineTransition {
                        pu,
                        line,
                        from,
                        to,
                    });
                }
            }
        }
        self.stats.squash_invalidations += invalidated;
        self.stats.squash_retained += retained;
        self.assignments.release(pu);
    }

    fn profile_gauges(&self, now: Cycle) -> MemGauges {
        MemGauges {
            outstanding_misses: self
                .mshrs
                .iter()
                .map(|m| m.outstanding_at(now) as u64)
                .sum(),
            live_versions: (0..self.config.num_pus)
                .map(|i| self.speculative_line_count(PuId(i)) as u64)
                .sum(),
        }
    }

    fn check_invariants(&self, now: Cycle) -> Vec<InvariantViolation> {
        crate::watchdog::check_system(self, now)
    }

    fn check_post_squash(&self, pu: PuId, now: Cycle) -> Vec<InvariantViolation> {
        crate::watchdog::check_post_squash(self, pu, now)
    }

    fn drain(&mut self) {
        // Push every committed version to memory, most recent committed
        // winner per sub-block, in VOL order.
        let mut lines: Vec<LineId> = Vec::new();
        for cache in &self.caches {
            for l in cache.iter() {
                if l.is_valid() && l.committed && !l.store.is_empty() {
                    let id = l.line.expect("valid line has a tag");
                    if !lines.contains(&id) {
                        lines.push(id);
                    }
                }
            }
        }
        for line in lines {
            let snaps = self.snapshots(line);
            let vol = order_vol(&snaps);
            let committed: Vec<&LineSnapshot> = vol
                .iter()
                .map(|&q| snaps.iter().find(|s| s.pu == q).expect("member"))
                .filter(|s| s.committed)
                .collect();
            let subblocks = self.config.geometry.subblocks_per_line();
            let mut flushes: Vec<(PuId, SubMask)> = Vec::new();
            for j in 0..subblocks {
                if let Some(s) = committed.iter().rev().find(|s| s.store.contains(j)) {
                    match flushes.iter_mut().find(|(q, _)| *q == s.pu) {
                        Some((_, m)) => m.set(j),
                        None => flushes.push((s.pu, SubMask::single(j))),
                    }
                }
            }
            for (q, mask) in flushes {
                self.flush_to_memory(q, line, mask, Cycle::ZERO);
                if let Some(r) = self.caches[q.index()].find(line) {
                    let l = self.caches[q.index()].slot_mut(r);
                    l.store = l.store.minus(mask);
                }
            }
        }
    }

    fn architectural(&self, addr: Addr) -> Word {
        self.backing.peek(addr)
    }

    fn stats(&self) -> MemStats {
        let mut s = self.stats;
        s.bus_transactions = self.bus.transactions();
        s.bus_busy_cycles = self.bus.busy_cycles();
        s.bus_wait_cycles = self.bus.total_wait_cycles();
        let (l2_hits, l2_misses, _) = self.backing.l2_stats();
        s.l2_hits = l2_hits;
        s.l2_misses = l2_misses;
        for m in &self.mshrs {
            s.mshr_misses += m.primary_misses();
            s.mshr_combines += m.total_combines();
            s.mshr_stall_cycles += m.total_stall_cycles();
        }
        for w in &self.wbufs {
            s.wb_stall_cycles += w.stall_cycles();
        }
        s
    }

    fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.bus.reset_stats();
        self.backing.reset_stats();
        for m in &mut self.mshrs {
            m.reset_stats();
        }
        for w in &mut self.wbufs {
            w.reset_stats();
        }
    }
}

impl ModelCheckable for SvcSystem {
    fn fingerprint(&self, addrs: &[Addr], h: &mut StateHasher) {
        let w = self.config.geometry.words_per_subblock();
        for pu in 0..self.config.num_pus {
            h.write_opt_u64(self.assignments.task_of(PuId(pu)).map(|t| t.0));
        }
        // Every slot of every cache in flat (set-major) order: the full
        // protocol state plus the data of valid sub-blocks. Invalid
        // sub-blocks' words are unreadable garbage and are skipped so
        // they cannot split otherwise-identical states. LRU stamps,
        // MSHR timestamps and writeback drain queues are timing-only
        // and deliberately excluded.
        for cache in &self.caches {
            for l in cache.iter() {
                if !l.is_valid() {
                    h.write_u8(0);
                    continue;
                }
                h.write_u8(1);
                h.write_u64(l.line.expect("valid line has a tag").0);
                h.write_u64(l.valid.0);
                h.write_u64(l.store.0);
                h.write_u64(l.load.0);
                h.write_bool(l.committed);
                h.write_bool(l.stale);
                h.write_bool(l.arch);
                h.write_bool(l.exclusive);
                h.write_opt_u64(l.next.map(|p| p.0 as u64));
                for j in l.valid.iter() {
                    for k in 0..w {
                        h.write_u64(l.data[j * w + k].0);
                    }
                }
            }
        }
        // The committed image at the next level, over the checker's
        // bounded address alphabet.
        for &addr in addrs {
            h.write_u64(self.backing.peek(addr).0);
        }
    }
}

/// Checkpoints the complete mutable state of the memory system: every
/// cache line (state bits, VOL pointers, data), the bus and backing
/// store, MSHRs, writeback buffers, task assignments, accumulated stats
/// and fault-injection streams. Unlike [`ModelCheckable::fingerprint`],
/// timing state (LRU stamps, drain queues, busy-until) is included — a
/// restored system must continue cycle-for-cycle identically.
///
/// Configuration (geometry, capacities, design knobs) is *not* stored;
/// restore targets a freshly built system with the same [`SvcConfig`] and
/// cross-checks the structural facts it can (PU count, lines per cache,
/// fault thresholds).
impl svc_types::Checkpointable for SvcSystem {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        w.put_usize(self.caches.len());
        for c in &self.caches {
            c.save_state(w);
        }
        self.bus.save_state(w);
        self.backing.save_state(w);
        for m in &self.mshrs {
            m.save_state(w);
        }
        for b in &self.wbufs {
            b.save_state(w);
        }
        self.assignments.save_state(w);
        self.stats.save_state(w);
        self.faults.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        let n = r.take_usize()?;
        if n != self.caches.len() {
            return Err(svc_types::CkptError::corrupt(format!(
                "system built with {} PUs, checkpoint has {n}",
                self.caches.len()
            )));
        }
        for c in &mut self.caches {
            c.restore_state(r)?;
        }
        self.bus.restore_state(r)?;
        self.backing.restore_state(r)?;
        for m in &mut self.mshrs {
            m.restore_state(r)?;
        }
        for b in &mut self.wbufs {
            b.restore_state(r)?;
        }
        self.assignments.restore_state(r)?;
        self.stats.restore_state(r)?;
        self.faults.restore_state(r)
    }
}
