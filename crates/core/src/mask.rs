use core::fmt;
use core::ops::{BitAnd, BitOr, Not};

/// A per-sub-block bit mask over one cache line.
///
/// The RL design (paper §3.7) keeps the `L` and `S` bits per *versioning
/// block* (sub-block) rather than per line, and BusWrite requests carry
/// "mask bits that indicate the versioning blocks modified by the store".
/// `SubMask` is that mask; designs with one-word lines simply use masks of
/// width 1. This implementation also keeps per-sub-block valid bits, as a
/// sector cache does.
///
/// Supports up to 64 sub-blocks per line.
///
/// # Example
///
/// ```
/// use svc::SubMask;
/// let m = SubMask::single(2) | SubMask::single(0);
/// assert!(m.contains(0) && !m.contains(1) && m.contains(2));
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SubMask(pub u64);

impl SubMask {
    /// The empty mask.
    pub const EMPTY: SubMask = SubMask(0);

    /// A mask with only sub-block `i` set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[inline]
    pub fn single(i: usize) -> SubMask {
        assert!(i < 64, "at most 64 sub-blocks per line");
        SubMask(1 << i)
    }

    /// A mask with sub-blocks `0..n` set.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[inline]
    pub fn all(n: usize) -> SubMask {
        assert!(n <= 64, "at most 64 sub-blocks per line");
        if n == 64 {
            SubMask(u64::MAX)
        } else {
            SubMask((1u64 << n) - 1)
        }
    }

    /// Whether sub-block `i` is set.
    #[inline]
    pub fn contains(self, i: usize) -> bool {
        i < 64 && self.0 & (1 << i) != 0
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `self` and `other` share any bit.
    #[inline]
    pub fn intersects(self, other: SubMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Sets sub-block `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        *self = *self | SubMask::single(i);
    }

    /// Clears sub-block `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        self.0 &= !SubMask::single(i).0;
    }

    /// The bits in `self` but not in `other`.
    #[inline]
    pub fn minus(self, other: SubMask) -> SubMask {
        SubMask(self.0 & !other.0)
    }

    /// Number of set bits.
    #[inline]
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterator over the set sub-block indices, ascending. A bit-scan
    /// loop (`trailing_zeros` + clear-lowest), so iterating a sparse
    /// mask costs one step per set bit, not 64.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        core::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }
}

impl BitOr for SubMask {
    type Output = SubMask;
    #[inline]
    fn bitor(self, rhs: SubMask) -> SubMask {
        SubMask(self.0 | rhs.0)
    }
}

impl BitAnd for SubMask {
    type Output = SubMask;
    #[inline]
    fn bitand(self, rhs: SubMask) -> SubMask {
        SubMask(self.0 & rhs.0)
    }
}

impl Not for SubMask {
    type Output = SubMask;
    #[inline]
    fn not(self) -> SubMask {
        SubMask(!self.0)
    }
}

impl fmt::Debug for SubMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubMask({:#b})", self.0)
    }
}

impl fmt::Display for SubMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#b}", self.0)
    }
}

impl fmt::Binary for SubMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl svc_types::Checkpointable for SubMask {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.0.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.0.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_contains() {
        let m = SubMask::single(3);
        assert!(m.contains(3));
        assert!(!m.contains(2));
        assert!(!m.contains(64));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn all_widths() {
        assert_eq!(SubMask::all(0), SubMask::EMPTY);
        assert_eq!(SubMask::all(3).0, 0b111);
        assert_eq!(SubMask::all(64).0, u64::MAX);
    }

    #[test]
    fn set_clear_minus() {
        let mut m = SubMask::EMPTY;
        m.set(1);
        m.set(4);
        assert_eq!(m.count(), 2);
        m.clear(1);
        assert!(!m.contains(1) && m.contains(4));
        assert_eq!(SubMask::all(4).minus(SubMask::single(2)).0, 0b1011);
    }

    #[test]
    fn ops_and_iter() {
        let a = SubMask::single(0) | SubMask::single(2);
        let b = SubMask::single(2) | SubMask::single(3);
        assert_eq!((a & b), SubMask::single(2));
        assert!(a.intersects(b));
        assert!(!a.intersects(SubMask::single(1)));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert!((!SubMask::EMPTY).contains(63));
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn oversized_single_panics() {
        SubMask::single(64);
    }
}
