use core::fmt;

use svc_mem::Slot;
use svc_types::{LineId, PuId, Word};

use crate::mask::SubMask;

/// The five line states of the final SVC design (paper Figure 18).
///
/// Derived from the stored bits rather than stored itself: *Active* means
/// the C bit is reset (the line was accessed by the task currently on this
/// PU), *Passive* means committed; *Dirty* means some sub-block's S bit is
/// set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// No valid sub-block.
    Invalid,
    /// Uncommitted, no stores (V, C̄, no S).
    ActiveClean,
    /// Uncommitted with store data (V, C̄, some S) — a speculative version.
    ActiveDirty,
    /// Committed, no store data left to write back.
    PassiveClean,
    /// Committed with store data awaiting lazy writeback.
    PassiveDirty,
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LineState::Invalid => "I",
            LineState::ActiveClean => "AC",
            LineState::ActiveDirty => "AD",
            LineState::PassiveClean => "PC",
            LineState::PassiveDirty => "PD",
        };
        f.write_str(s)
    }
}

/// One line of an SVC private cache (paper Figure 16).
///
/// Carries the full final-design state: per-sub-block valid (sector bits),
/// store (`S`) and load (`L`) masks; the per-line commit (`C`), stale
/// (`T`) and architectural (`A`) bits; the Version Ordering List pointer to
/// the PU holding the next copy/version; and the data words.
///
/// Simpler designs simply leave the bits they lack at their reset values.
#[derive(Debug, Clone, Default)]
pub struct SvcLine {
    /// The address block held, if any.
    pub line: Option<LineId>,
    /// Per-sub-block valid bits (the sector-cache V bits).
    pub valid: SubMask,
    /// Per-sub-block store (dirty) bits — the `S` bits of §3.7.
    pub store: SubMask,
    /// Per-sub-block use-before-define bits — the `L` bits.
    pub load: SubMask,
    /// Commit bit: the creating task has committed (§3.4).
    pub committed: bool,
    /// Stale bit: a newer version of this line exists (§3.4.3).
    pub stale: bool,
    /// Architectural bit: this data is (a copy of) the architectural
    /// version, safe to retain across squashes (§3.5.1).
    pub arch: bool,
    /// VOL pointer: the PU with the next copy/version of this line.
    pub next: Option<PuId>,
    /// Exclusive (X) bit: this is the only cached copy of the line
    /// anywhere, so a store may proceed without a bus request (Figure 16
    /// lists the X bit; §3.1 describes the underlying SMP optimization).
    /// Set only by the VCL when a transaction leaves a sole holder;
    /// cleared whenever a snooped transaction adds another holder.
    pub exclusive: bool,
    /// Data words (length = words per line).
    pub data: Vec<Word>,
}

impl SvcLine {
    /// An invalid line sized for `words_per_line`.
    pub fn invalid(words_per_line: usize) -> SvcLine {
        SvcLine {
            data: vec![Word::ZERO; words_per_line],
            ..SvcLine::default()
        }
    }

    /// Whether any sub-block holds valid data.
    pub fn is_valid(&self) -> bool {
        self.line.is_some() && !self.valid.is_empty()
    }

    /// This line's state bits as a trace-friendly value (old→new pairs of
    /// these appear in `line`-category trace events).
    pub fn bits(&self) -> svc_sim::trace::LineBits {
        svc_sim::trace::LineBits {
            valid: self.valid.0,
            store: self.store.0,
            load: self.load.0,
            committed: self.committed,
            stale: self.stale,
            arch: self.arch,
            exclusive: self.exclusive,
        }
    }

    /// The derived five-state classification (Figure 18).
    pub fn state(&self) -> LineState {
        if !self.is_valid() {
            LineState::Invalid
        } else {
            match (self.committed, self.store.is_empty()) {
                (false, true) => LineState::ActiveClean,
                (false, false) => LineState::ActiveDirty,
                (true, true) => LineState::PassiveClean,
                (true, false) => LineState::PassiveDirty,
            }
        }
    }

    /// Fully invalidates the line, clearing every bit.
    pub fn invalidate(&mut self) {
        let words = self.data.len();
        *self = SvcLine::invalid(words);
    }

    /// Invalidates the given sub-blocks; fully invalidates the line when no
    /// valid sub-block remains. Returns `true` if the whole line became
    /// invalid.
    pub fn invalidate_subblocks(&mut self, mask: SubMask) -> bool {
        self.valid = self.valid.minus(mask);
        self.store = self.store.minus(mask);
        self.load = self.load.minus(mask);
        if self.valid.is_empty() {
            self.invalidate();
            true
        } else {
            false
        }
    }
}

impl Slot for SvcLine {
    fn held_line(&self) -> Option<LineId> {
        if self.is_valid() {
            self.line
        } else {
            None
        }
    }
}

impl svc_types::Checkpointable for SvcLine {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.line.save_state(w);
        self.valid.save_state(w);
        self.store.save_state(w);
        self.load.save_state(w);
        self.committed.save_state(w);
        self.stale.save_state(w);
        self.arch.save_state(w);
        self.next.save_state(w);
        self.exclusive.save_state(w);
        self.data.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.line.restore_state(r)?;
        self.valid.restore_state(r)?;
        self.store.restore_state(r)?;
        self.load.restore_state(r)?;
        self.committed.restore_state(r)?;
        self.stale.restore_state(r)?;
        self.arch.restore_state(r)?;
        self.next.restore_state(r)?;
        self.exclusive.restore_state(r)?;
        self.data.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_with(valid: SubMask, store: SubMask, committed: bool) -> SvcLine {
        SvcLine {
            line: Some(LineId(1)),
            valid,
            store,
            committed,
            data: vec![Word::ZERO; 4],
            ..SvcLine::default()
        }
    }

    #[test]
    fn state_classification() {
        assert_eq!(SvcLine::invalid(4).state(), LineState::Invalid);
        assert_eq!(
            line_with(SubMask::all(1), SubMask::EMPTY, false).state(),
            LineState::ActiveClean
        );
        assert_eq!(
            line_with(SubMask::all(1), SubMask::single(0), false).state(),
            LineState::ActiveDirty
        );
        assert_eq!(
            line_with(SubMask::all(1), SubMask::EMPTY, true).state(),
            LineState::PassiveClean
        );
        assert_eq!(
            line_with(SubMask::all(1), SubMask::single(0), true).state(),
            LineState::PassiveDirty
        );
    }

    #[test]
    fn tag_without_valid_bits_is_not_held() {
        let mut l = SvcLine::invalid(2);
        l.line = Some(LineId(9));
        assert!(!l.is_valid());
        assert_eq!(l.held_line(), None);
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut l = line_with(SubMask::all(2), SubMask::single(1), true);
        l.stale = true;
        l.arch = true;
        l.next = Some(PuId(2));
        l.invalidate();
        assert_eq!(l.state(), LineState::Invalid);
        assert_eq!(l.next, None);
        assert!(!l.stale && !l.arch && !l.committed);
        assert_eq!(l.data.len(), 4, "data storage is retained");
    }

    #[test]
    fn partial_subblock_invalidation() {
        let mut l = line_with(SubMask::all(2), SubMask::single(1), false);
        l.load = SubMask::single(0);
        assert!(!l.invalidate_subblocks(SubMask::single(1)));
        assert_eq!(l.state(), LineState::ActiveClean, "store bit went away");
        assert!(l.valid.contains(0));
        assert!(!l.valid.contains(1));
        // Invalidating the rest kills the line.
        assert!(l.invalidate_subblocks(SubMask::single(0)));
        assert_eq!(l.state(), LineState::Invalid);
    }

    #[test]
    fn display_states() {
        assert_eq!(format!("{}", LineState::PassiveDirty), "PD");
        assert_eq!(format!("{}", LineState::Invalid), "I");
    }
}
