//! Prometheus exposition hygiene over every metric the harness
//! actually emits: a real run's registry and a real soak registry
//! (labels, histograms, distributions included) must render to valid
//! text-format lines with legal names, no collisions, and one `# TYPE`
//! per family.

use std::collections::HashSet;

use svc_bench::soak::{run_soak, SoakConfig};
use svc_bench::{run_source, MemoryKind, NUM_PUS};
use svc_multiscalar::EngineConfig;
use svc_sim::fault::StormSchedule;
use svc_sim::metrics::{sanitize_metric_name, MetricsRegistry};
use svc_workloads::kernels;

/// A legal Prometheus metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn is_legal_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits a sample line into (name-with-labels, value), checking shape.
fn check_sample_line(line: &str) {
    let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
        panic!("sample line has no value separator: {line:?}");
    });
    assert!(
        value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf" || value == "NaN",
        "unparseable sample value {value:?} in {line:?}"
    );
    let name = match series.split_once('{') {
        Some((name, rest)) => {
            assert!(rest.ends_with('}'), "unterminated label set: {line:?}");
            for pair in rest[..rest.len() - 1].split("\",") {
                let (key, val) = pair
                    .split_once("=\"")
                    .unwrap_or_else(|| panic!("malformed label pair {pair:?} in {line:?}"));
                assert!(is_legal_name(key), "illegal label name {key:?} in {line:?}");
                // Escaped payloads only: no raw quote or newline.
                assert!(!val.trim_end_matches('"').contains('\n'));
            }
            name
        }
        None => series,
    };
    assert!(
        is_legal_name(name),
        "illegal metric name {name:?} in {line:?}"
    );
}

/// Asserts the full exposition body is line-format clean and each
/// family is TYPE-declared at most once.
fn check_exposition(text: &str) {
    let mut typed = HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let family = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(is_legal_name(family), "illegal family {family:?}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram" | "summary"),
                "unknown family kind {kind:?}"
            );
            assert!(
                typed.insert(family.to_string()),
                "duplicate TYPE for {family}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment line {line:?}");
        check_sample_line(line);
    }
}

/// Every raw registry name sanitizes to a legal, collision-free name.
fn check_names(reg: &MetricsRegistry) {
    let mut seen = HashSet::new();
    let mut raw = HashSet::new();
    for entry in reg.iter_entries() {
        let clean = sanitize_metric_name(&entry.name);
        assert!(
            is_legal_name(&clean),
            "{:?} sanitized to illegal {clean:?}",
            entry.name
        );
        if raw.insert(entry.name.clone()) {
            assert!(
                seen.insert(clean.clone()),
                "distinct raw names collide after sanitization at {clean:?}"
            );
        }
    }
    assert!(!seen.is_empty(), "registry exported no metrics");
}

#[test]
fn run_registry_sanitizes_and_renders_cleanly() {
    let src = kernels::producer_consumer(400, 6);
    let cfg = EngineConfig {
        num_pus: NUM_PUS,
        max_instructions: 20_000,
        seed: 42,
        ..EngineConfig::default()
    };
    let result = run_source(&src, MemoryKind::Svc { kb_per_cache: 8 }, cfg);
    let reg = result.metrics();
    // The engine's raw names use dots (`mem.bus_wait_cycles` et al) —
    // exactly what sanitization exists for.
    assert!(
        reg.iter_entries().any(|e| e.name.contains('.')),
        "expected dotted raw names in the run registry"
    );
    check_names(&reg);
    check_exposition(&reg.render_prometheus());
}

#[test]
fn soak_registry_with_labels_and_distributions_renders_cleanly() {
    let cfg = SoakConfig {
        seed: 7,
        ticks: 13, // past one full storm period, so fault labels appear
        slice_budget: 4_000,
        storm: StormSchedule::default(),
        ..SoakConfig::default()
    };
    let state = run_soak(&cfg, |_| true);
    let reg = state.metrics();
    assert!(
        reg.iter_entries().any(|e| !e.labels.is_empty()),
        "soak registry exports labeled series"
    );
    check_names(&reg);
    let text = reg.render_prometheus();
    check_exposition(&text);
    // Histogram families carry the cumulative bucket contract.
    assert!(text.contains("_bucket{le=\"+Inf\"}"), "+Inf bucket present");
    assert!(text.contains("soak_slices{workload=\"streaming\"}"));
    assert!(text.contains("soak_faults{site="));
}
