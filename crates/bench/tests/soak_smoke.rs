//! Bounded-soak integration smoke: the whole telemetry surface —
//! per-tick Prometheus text, rolling profile documents, healthz, and
//! the final `svc-soak/v1` snapshot — must be byte-identical across
//! repeat runs of the same seeded configuration, and the snapshot must
//! round-trip through the JSON parser.

use svc_bench::report::{self, parse, SCHEMA_SOAK};
use svc_bench::soak::{healthz_json, run_soak, soak_doc, SoakConfig};
use svc_sim::fault::StormSchedule;

fn cfg() -> SoakConfig {
    SoakConfig {
        seed: 0xBEEF,
        ticks: 14, // crosses a full mix rotation and two storm periods
        slice_budget: 4_000,
        storm: StormSchedule {
            period: 6,
            duration: 2,
            rate: 0.05,
            penalty: 6,
        },
        ..SoakConfig::default()
    }
}

/// Runs one bounded soak, capturing every telemetry artifact the serve
/// observer would publish at each tick.
fn soak_artifacts() -> (Vec<String>, String) {
    let c = cfg();
    let mut per_tick = Vec::new();
    let state = run_soak(&c, |s| {
        per_tick.push(format!(
            "{}\n{}\n{}",
            s.metrics().render_prometheus(),
            report::profile_report_json(&s.profile_report(&c)).render(),
            healthz_json(s).render()
        ));
        true
    });
    (per_tick, soak_doc(&c, &state).render())
}

#[test]
fn telemetry_stream_is_byte_identical_across_runs() {
    let (ticks_a, doc_a) = soak_artifacts();
    let (ticks_b, doc_b) = soak_artifacts();
    assert_eq!(ticks_a.len(), 14);
    for (i, (a, b)) in ticks_a.iter().zip(&ticks_b).enumerate() {
        assert_eq!(a, b, "tick {} telemetry diverged", i + 1);
    }
    assert_eq!(doc_a, doc_b, "final snapshot diverged");
}

#[test]
fn soak_doc_round_trips_through_the_parser() {
    let (_, doc) = soak_artifacts();
    let parsed = parse(&doc).expect("soak doc parses");
    assert_eq!(parsed.render(), doc, "parse/render identity");
    assert_eq!(
        parsed.get("schema").and_then(|j| j.as_str()),
        Some(SCHEMA_SOAK)
    );
    let obj = parsed.as_obj().expect("object root");
    for key in ["seed", "ticks", "storm", "metrics", "healthz", "profile"] {
        assert!(
            obj.iter().any(|(k, _)| k == key),
            "snapshot carries {key:?}"
        );
    }
}

#[test]
fn storms_recover_and_healthz_stays_ok() {
    let c = cfg();
    let state = run_soak(&c, |_| true);
    assert!(state.storms_started >= 2, "two storm periods elapsed");
    assert!(state.storm_slices >= 4, "two slices per storm");
    assert!(state.faults_injected > 0, "storms injected faults");
    assert_eq!(
        state.storm_slices, state.storm_slices_clean,
        "every storm slice recovered with a clean watchdog"
    );
    assert!(state.healthy());
    let health = healthz_json(&state).render();
    assert!(health.contains("\"status\": \"ok\""), "{health}");
}
