//! Profiler end-to-end guarantees: the `svc-profile/v1` document is
//! byte-identical at any worker-thread count and round-trips through the
//! report parser, Chrome counter tracks render next to the event stream,
//! and a profiler that is attached but disabled leaves the simulation's
//! serialized output untouched (the zero-cost claim).
//!
//! Every test that needs a live profiler sets `SVC_PROFILE=1`; no test in
//! this binary requires it unset (the zero-cost test attaches its
//! profilers explicitly), so the process-global flag is race-free here.

use svc_bench::harness::{job_seeds, run_grid_with_threads};
use svc_bench::report::{self, Json};
use svc_bench::{cross, profile_counter_series, run_spec95_with, MemoryKind, NUM_PUS};
use svc_multiscalar::{Engine, EngineConfig, TaskSource};
use svc_sim::profile::Profiler;
use svc_sim::trace::render_chrome_with_counters;
use svc_types::VersionedMemory;
use svc_workloads::{kernels, Spec95};

const GRID_SEED: u64 = 0x9F11E;
const BUDGET: u64 = 8_000;

fn enable_profiling() {
    std::env::set_var("SVC_PROFILE", "1");
}

/// Runs the smoke grid and renders its `svc-profile/v1` document.
fn profile_doc_at(threads: usize) -> String {
    let jobs = cross(
        &[Spec95::Gcc, Spec95::Mgrid],
        &[
            MemoryKind::Svc { kb_per_cache: 8 },
            MemoryKind::Arb {
                hit_cycles: 2,
                cache_kb: 32,
            },
        ],
    );
    let seeds = job_seeds(GRID_SEED, jobs.len());
    let outcome = run_grid_with_threads(&jobs, GRID_SEED, threads, |job, seed| {
        run_spec95_with(job.bench, job.memory, BUDGET, seed)
    });
    let runs = outcome
        .results
        .iter()
        .zip(&seeds)
        .map(|(r, &s)| {
            let p = r.profile.as_ref().expect("SVC_PROFILE=1 yields profiles");
            assert!(p.conservation_ok(), "grid cell violates conservation");
            Json::obj()
                .set("workload", "cell".into())
                .set("seed", s.into())
                .set("profile", report::profile_report_json(p))
        })
        .collect();
    report::profile_doc("profile-smoke", BUDGET, GRID_SEED, runs).render()
}

#[test]
fn profile_json_byte_identical_at_1_2_and_8_threads() {
    enable_profiling();
    let serial = profile_doc_at(1);
    for threads in [2, 8] {
        assert_eq!(
            serial,
            profile_doc_at(threads),
            "profile JSON diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn profile_doc_parses_as_svc_profile_v1() {
    enable_profiling();
    let doc = report::parse(&profile_doc_at(2)).expect("profile doc parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(report::SCHEMA_PROFILE)
    );
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs array");
    assert_eq!(runs.len(), 4);
    for run in runs {
        let p = run.get("profile").expect("run carries a profile");
        let ok = p
            .get("conservation")
            .and_then(|c| c.get("ok"))
            .map(Json::render);
        assert_eq!(
            ok.as_deref().map(str::trim),
            Some("true"),
            "conservation.ok must serialize true"
        );
        let per_pu = p.get("per_pu").and_then(Json::as_arr).expect("per_pu");
        assert_eq!(per_pu.len(), NUM_PUS);
        // The interval series exists and its rows carry the derived
        // rates tooling plots directly.
        let series = p.get("series").and_then(Json::as_arr).expect("series");
        assert!(!series.is_empty(), "budgeted run must produce samples");
        for row in series {
            for key in ["cycle", "ipc", "bus_utilization", "squash_rate"] {
                assert!(row.get(key).is_some(), "series row lacks {key}");
            }
        }
    }
}

#[test]
fn chrome_counter_tracks_render_alongside_events() {
    enable_profiling();
    let result = run_spec95_with(Spec95::Gcc, MemoryKind::Svc { kb_per_cache: 8 }, BUDGET, 7);
    let counters = profile_counter_series(result.profile.as_ref().expect("profiled"));
    assert!(counters.iter().any(|(name, _)| name == "ipc"));
    let chrome = render_chrome_with_counters(&[], "counters-smoke", &counters);
    let doc = report::parse(&chrome).expect("chrome trace with counters parses");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let counter_events: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
        .collect();
    assert!(!counter_events.is_empty(), "no counter events emitted");
    for e in &counter_events {
        assert!(
            e.get("args").and_then(|a| a.get("value")).is_some(),
            "counter event lacks args.value"
        );
    }
}

#[test]
fn attached_disabled_profiler_is_zero_cost_in_serialized_output() {
    // A run with a disabled profiler attached must serialize exactly as
    // a live-profiled run does (minus the profile itself): the profiler
    // is observational only and must never perturb timing or stats.
    let render = |profiler: Profiler| {
        let source = kernels::producer_consumer(2_000, 6);
        let mut system = svc::SvcSystem::new(svc::SvcConfig::final_design(NUM_PUS));
        system.set_profiler(profiler.clone());
        let cfg = EngineConfig {
            num_pus: NUM_PUS,
            max_instructions: BUDGET,
            seed: 42,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(cfg, system);
        engine.set_profiler(profiler);
        let report = engine.run(&source as &dyn TaskSource);
        let stats = engine.memory().stats();
        format!(
            "{}{}",
            report::run_report_json(&report).render(),
            report::mem_stats_json(&stats).render()
        )
    };
    assert_eq!(
        render(Profiler::disabled()),
        render(Profiler::new(NUM_PUS, 1_024)),
        "an active profiler changed the simulation's serialized output"
    );
}
