//! Differential test for the parallel planning engine: sharding a
//! simulated machine's per-cycle access planning across threads must be
//! invisible in every serialized artifact. `SVC_ENGINE_THREADS=N` picks
//! the lane count; this binary runs the same work at 1, 2 and 8 lanes
//! and demands bytes identical to the unset (sequential) baseline —
//! run documents, trace JSONL, profile reports, and checkpoint payloads
//! alike.
//!
//! Everything lives in ONE `#[test]`: the toggle is a process-global
//! environment variable, so scenarios must run sequentially, never in
//! parallel test threads.

use svc::{SvcConfig, SvcSystem};
use svc_bench::harness::job_seeds;
use svc_bench::report::{self, Json};
use svc_bench::{
    cross, run_derived_grid, run_source, run_source_with, run_spec95_with, ExperimentResult,
    MemoryKind, PAPER_SEED,
};
use svc_multiscalar::{Engine, EngineConfig, Instr, VecTaskSource};
use svc_sim::trace::{render_jsonl, Category, Tracer, DEFAULT_CAPACITY};
use svc_types::{Addr, Checkpointable, CkptReader, CkptWriter, Word};
use svc_workloads::Spec95;

/// A pinned grid at a small budget: the suite below runs four times
/// (baseline + three thread counts), so each pass must stay
/// seconds-scale.
const GRID_SEED: u64 = 0x9A51;
const BUDGET: u64 = 15_000;
const BENCHES: [Spec95; 3] = [Spec95::Gcc, Spec95::Ijpeg, Spec95::Mgrid];
const MEMORIES: [MemoryKind; 2] = [
    MemoryKind::Arb {
        hit_cycles: 1,
        cache_kb: 32,
    },
    MemoryKind::Svc { kb_per_cache: 8 },
];

fn set_threads(n: Option<u32>) {
    match n {
        Some(n) => std::env::set_var("SVC_ENGINE_THREADS", n.to_string()),
        None => std::env::remove_var("SVC_ENGINE_THREADS"),
    }
}

/// Renders the pinned grid as a full `svc-experiments/v1` document.
fn grid_doc() -> String {
    let jobs = cross(&BENCHES, &MEMORIES);
    let outcome = run_derived_grid(&jobs, GRID_SEED, BUDGET);
    let seeds = job_seeds(GRID_SEED, jobs.len());
    let runs = outcome
        .results
        .iter()
        .zip(&seeds)
        .map(|(r, &s)| report::experiment_result_json(r, s))
        .collect();
    report::experiment_doc("parallel-equiv", BUDGET, GRID_SEED, runs).render()
}

/// Renders one cell (run report + metrics registry) as JSON.
fn cell_json(result: &ExperimentResult) -> String {
    report::experiment_result_json(result, PAPER_SEED).render()
}

/// One faulted campaign cell: planning self-disables under an active
/// injector, and the fault timeline must not move by a single draw.
fn faulted_cell() -> String {
    std::env::set_var("SVC_FAULTS", "all=0.01, penalty=5");
    let result = run_spec95_with(
        Spec95::Gcc,
        MemoryKind::Svc { kb_per_cache: 8 },
        BUDGET,
        PAPER_SEED,
    );
    std::env::remove_var("SVC_FAULTS");
    cell_json(&result)
}

/// One traced + profiled cell: every trace event must land on the same
/// cycle in the same order, and stall attribution must both conserve
/// and match bytewise.
fn traced_profiled_cell() -> String {
    std::env::set_var("SVC_PROFILE", "1");
    let tracer = Tracer::new(Category::ALL, DEFAULT_CAPACITY);
    let wl = Spec95::Mgrid.workload(PAPER_SEED);
    let cfg = EngineConfig {
        num_pus: 4,
        predictor: wl.profile().predictor(PAPER_SEED),
        max_instructions: BUDGET,
        seed: PAPER_SEED,
        garbage_addr_space: wl.profile().hot_set.max(64),
        load_dep_frac: wl.profile().load_dep_frac,
        ..EngineConfig::default()
    };
    let result = run_source_with(
        &wl,
        MemoryKind::Svc { kb_per_cache: 8 },
        cfg,
        tracer.clone(),
    );
    std::env::remove_var("SVC_PROFILE");
    let profile = result.profile.as_ref().expect("SVC_PROFILE=1");
    assert!(
        profile.conservation_ok(),
        "stall attribution violates conservation: expected {}, attributed {}",
        profile.expected(),
        profile.attributed()
    );
    format!(
        "{}{}{}",
        cell_json(&result),
        render_jsonl(&tracer.records()),
        report::profile_report_json(profile).render()
    )
}

/// Value-passing chain with enough cross-task traffic to keep several
/// PUs planning per cycle (violations, squashes, replays included).
fn chain_program(n: u64) -> VecTaskSource {
    let tasks = (0..n)
        .map(|i| {
            let mut t = Vec::new();
            if i > 0 {
                t.push(Instr::Load(Addr(i - 1)));
            }
            t.extend([Instr::Compute(1); 2]);
            t.push(Instr::Store(Addr(i), Word(i + 1)));
            t
        })
        .collect();
    VecTaskSource::new(tasks).with_name("chain")
}

fn chain_engine(pus: usize) -> Engine<SvcSystem> {
    let cfg = EngineConfig {
        num_pus: pus,
        seed: 7,
        ..EngineConfig::default()
    };
    Engine::new(cfg, SvcSystem::new(SvcConfig::final_design(pus)))
}

fn snapshot(engine: &Engine<SvcSystem>) -> Vec<u8> {
    let mut w = CkptWriter::new();
    engine.save_state(&mut w);
    w.into_bytes()
}

/// One checkpoint/resume cell: pause mid-run, serialize, restore into a
/// fresh engine (which re-reads `SVC_ENGINE_THREADS`), continue. Both
/// the final report and the final serialized state must match the
/// baseline — checkpoints are thread-count-independent in both
/// directions.
fn checkpoint_resume_cell() -> String {
    let src = chain_program(48);
    let mut engine = chain_engine(8);
    while !engine.run_until(&src, Some(engine.cycle() + 13)) {
        if engine.cycle() > 40 {
            break;
        }
    }
    let mid = snapshot(&engine);
    let mut resumed = chain_engine(8);
    let mut r = CkptReader::new(&mid);
    resumed
        .restore_state(&mut r)
        .expect("mid-run state restores");
    r.finish().expect("no trailing bytes");
    while !resumed.run_until(&src, Some(resumed.cycle() + 17)) {}
    let report = resumed.finish();
    format!("{report:?}{:?}", snapshot(&resumed))
}

/// One big-machine cell (64 PUs): wide enough that a planning epoch
/// sees many concurrent accesses. Returns the rendered cell plus the
/// engine's barrier count so the harness can prove the pool engaged.
fn high_pu_cell() -> String {
    let wl = Spec95::Ijpeg.workload(PAPER_SEED);
    let cfg = EngineConfig {
        num_pus: 64,
        predictor: wl.profile().predictor(PAPER_SEED),
        max_instructions: 30_000,
        seed: PAPER_SEED,
        garbage_addr_space: wl.profile().hot_set.max(64),
        load_dep_frac: wl.profile().load_dep_frac,
        ..EngineConfig::default()
    };
    let result = run_source(&wl, MemoryKind::Svc { kb_per_cache: 8 }, cfg);
    cell_json(&result)
}

/// All five scenarios under the current `SVC_ENGINE_THREADS` setting.
fn suite() -> [String; 5] {
    [
        grid_doc(),
        faulted_cell(),
        traced_profiled_cell(),
        checkpoint_resume_cell(),
        high_pu_cell(),
    ]
}

#[test]
fn parallel_planning_is_byte_identical_to_sequential() {
    const NAMES: [&str; 5] = [
        "pinned grid document",
        "faulted campaign cell",
        "traced+profiled cell",
        "checkpoint/resume cell",
        "64-PU cell",
    ];

    set_threads(None);
    let baseline = suite();

    for threads in [1, 2, 8] {
        set_threads(Some(threads));
        let got = suite();
        for (name, (want, have)) in NAMES.iter().zip(baseline.iter().zip(got.iter())) {
            assert_eq!(
                want, have,
                "SVC_ENGINE_THREADS={threads} changed the {name}"
            );
        }
    }

    // Sanity 1: the parallel path actually engaged — a wide machine at
    // 8 lanes must cross at least one planning barrier.
    set_threads(Some(8));
    let src = chain_program(200);
    let mut engine = chain_engine(16);
    engine.run(&src);
    let (threads, barriers, _nanos) = engine.par_stats();
    assert_eq!(threads, 8, "engine did not pick up SVC_ENGINE_THREADS");
    assert!(
        barriers > 0,
        "8-lane run of a 16-PU chain never planned in parallel"
    );
    set_threads(None);

    // Sanity 2: the documents carry real runs, not empty grids.
    let doc = report::parse(&baseline[0]).expect("grid doc parses");
    assert_eq!(
        doc.get("runs").and_then(Json::as_arr).map(<[_]>::len),
        Some(6)
    );
}
