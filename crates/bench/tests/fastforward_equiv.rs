//! Differential test for the idle-cycle fast-forward: jumping the clock
//! over provably-idle cycles must be invisible in every serialized
//! artifact. `SVC_NO_FASTFORWARD=1` forces the reference cycle-by-cycle
//! scheduler; this binary runs the same work both ways and demands
//! byte-identical JSON.
//!
//! Everything lives in ONE `#[test]`: the toggle is a process-global
//! environment variable, so scenarios must run sequentially, never in
//! parallel test threads.

use svc_bench::harness::job_seeds;
use svc_bench::report::{self, Json};
use svc_bench::{
    cross, run_derived_grid, run_spec95_with, ExperimentResult, MemoryKind, PAPER_SEED,
};
use svc_workloads::Spec95;

/// The regression gate's pinned 12-cell grid (`regress.rs` constants),
/// at a smaller budget so the doubled sweep stays seconds-scale.
const GRID_SEED: u64 = 0xB5E1;
const BUDGET: u64 = 20_000;
const BENCHES: [Spec95; 3] = [Spec95::Gcc, Spec95::Ijpeg, Spec95::Mgrid];
const MEMORIES: [MemoryKind; 4] = [
    MemoryKind::Arb {
        hit_cycles: 1,
        cache_kb: 32,
    },
    MemoryKind::Arb {
        hit_cycles: 2,
        cache_kb: 32,
    },
    MemoryKind::Svc { kb_per_cache: 8 },
    MemoryKind::Svc { kb_per_cache: 16 },
];

fn set_fastforward(enabled: bool) {
    if enabled {
        std::env::remove_var("SVC_NO_FASTFORWARD");
    } else {
        std::env::set_var("SVC_NO_FASTFORWARD", "1");
    }
}

/// Renders the pinned grid as a full `svc-experiments/v1` document.
fn grid_doc() -> String {
    let jobs = cross(&BENCHES, &MEMORIES);
    let outcome = run_derived_grid(&jobs, GRID_SEED, BUDGET);
    let seeds = job_seeds(GRID_SEED, jobs.len());
    let runs = outcome
        .results
        .iter()
        .zip(&seeds)
        .map(|(r, &s)| report::experiment_result_json(r, s))
        .collect();
    report::experiment_doc("fastforward-equiv", BUDGET, GRID_SEED, runs).render()
}

/// Renders one cell (run report + metrics registry) as JSON.
fn cell_json(result: &ExperimentResult) -> String {
    report::experiment_result_json(result, PAPER_SEED).render()
}

/// One faulted campaign cell: every injection site live at a rate that
/// fires often on this budget. Fast-forward must self-disable under an
/// active injector (sites draw from per-site streams once per scheduler
/// iteration, so skipped iterations would change the fault timeline).
fn faulted_cell() -> String {
    std::env::set_var("SVC_FAULTS", "all=0.01, penalty=5");
    let result = run_spec95_with(
        Spec95::Gcc,
        MemoryKind::Svc { kb_per_cache: 8 },
        BUDGET,
        PAPER_SEED,
    );
    std::env::remove_var("SVC_FAULTS");
    cell_json(&result)
}

/// One profiled cell: the interval sampler's rows must land on the same
/// cycles (fast-forward clamps jumps at sample boundaries) and the
/// stall-bucket conservation invariant must hold either way.
fn profiled_cell() -> String {
    std::env::set_var("SVC_PROFILE", "1");
    let result = run_spec95_with(
        Spec95::Mgrid,
        MemoryKind::Svc { kb_per_cache: 8 },
        BUDGET,
        PAPER_SEED,
    );
    std::env::remove_var("SVC_PROFILE");
    let profile = result.profile.as_ref().expect("SVC_PROFILE=1");
    assert!(
        profile.conservation_ok(),
        "stall attribution violates conservation: expected {}, attributed {}",
        profile.expected(),
        profile.attributed()
    );
    format!(
        "{}{}",
        cell_json(&result),
        report::profile_report_json(profile).render()
    )
}

#[test]
fn fastforward_is_byte_identical_to_cycle_by_cycle() {
    // Reference pass: cycle-by-cycle stepping.
    set_fastforward(false);
    let slow_grid = grid_doc();
    let slow_faulted = faulted_cell();
    let slow_profiled = profiled_cell();

    // Fast pass: idle-cycle jumps enabled (the default).
    set_fastforward(true);
    let fast_grid = grid_doc();
    let fast_faulted = faulted_cell();
    let fast_profiled = profiled_cell();

    assert_eq!(
        slow_grid, fast_grid,
        "fast-forward changed the pinned 12-cell grid document"
    );
    assert_eq!(
        slow_faulted, fast_faulted,
        "fast-forward changed a faulted campaign cell"
    );
    assert_eq!(
        slow_profiled, fast_profiled,
        "fast-forward changed a profiled cell or its stall attribution"
    );

    // Sanity: the documents carry real runs, not empty grids.
    let doc = report::parse(&fast_grid).expect("grid doc parses");
    assert_eq!(
        doc.get("runs").and_then(Json::as_arr).map(<[_]>::len),
        Some(12)
    );
}
