//! The harness's core guarantee: the same grid seed produces
//! byte-identical JSON at any worker-thread count.

use svc_bench::harness::{job_seeds, run_grid_with_threads};
use svc_bench::report::{experiment_doc, experiment_result_json};
use svc_bench::{cross, run_spec95_with, MemoryKind};
use svc_workloads::Spec95;

#[test]
fn same_grid_seed_is_byte_identical_at_1_2_and_8_threads() {
    const GRID_SEED: u64 = 0xDE7E; // any value; determinism is the point
    const BUDGET: u64 = 8_000;
    let jobs = cross(
        &[Spec95::Gcc, Spec95::Mgrid],
        &[
            MemoryKind::Svc { kb_per_cache: 8 },
            MemoryKind::Arb {
                hit_cycles: 2,
                cache_kb: 32,
            },
        ],
    );
    let seeds = job_seeds(GRID_SEED, jobs.len());
    let render = |threads: usize| {
        let outcome = run_grid_with_threads(&jobs, GRID_SEED, threads, |job, seed| {
            run_spec95_with(job.bench, job.memory, BUDGET, seed)
        });
        let runs = outcome
            .results
            .iter()
            .zip(&seeds)
            .map(|(r, &s)| experiment_result_json(r, s))
            .collect();
        experiment_doc("determinism", BUDGET, GRID_SEED, runs).render()
    };
    let serial = render(1);
    for threads in [2, 8] {
        let parallel = render(threads);
        assert_eq!(
            serial, parallel,
            "JSON diverged between 1 and {threads} threads"
        );
    }
    // And the derived seeds actually vary by job (the paper binaries pin
    // theirs, but the harness stream must not be degenerate).
    assert!(seeds.windows(2).all(|w| w[0] != w[1]));
}
