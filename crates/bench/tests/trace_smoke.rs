//! Tracing end-to-end guarantees: the sinks produce parseable output,
//! the forensics pass reconstructs a causal squash chain from a real
//! conflict-heavy run, tracing stays deterministic under the parallel
//! harness, and a disabled tracer leaves the experiment JSON
//! byte-identical to a run that never saw one.

use svc_bench::harness::run_grid_with_threads;
use svc_bench::report::{self, experiment_result_json};
use svc_bench::{run_source, run_source_with, MemoryKind, NUM_PUS};
use svc_multiscalar::EngineConfig;
use svc_sim::forensics;
use svc_sim::trace::{render_chrome, render_jsonl, Category, Tracer, DEFAULT_CAPACITY};
use svc_workloads::kernels;

const BUDGET: u64 = 6_000;

fn cfg(seed: u64) -> EngineConfig {
    EngineConfig {
        num_pus: NUM_PUS,
        max_instructions: BUDGET,
        seed,
        ..EngineConfig::default()
    }
}

fn traced_run(seed: u64) -> (svc_bench::ExperimentResult, Tracer) {
    let tracer = Tracer::new(Category::ALL, DEFAULT_CAPACITY);
    let source = kernels::producer_consumer(2_000, 6);
    let result = run_source_with(
        &source,
        MemoryKind::Svc { kb_per_cache: 8 },
        cfg(seed),
        tracer.clone(),
    );
    (result, tracer)
}

#[test]
fn traced_sinks_parse_and_forensics_reconstructs_squash_chains() {
    let (result, tracer) = traced_run(7);
    let records = tracer.records();
    assert!(!records.is_empty(), "traced run produced no events");
    assert_eq!(tracer.dropped(), 0, "tiny run must fit the ring");

    // Every JSONL line is a standalone JSON object the report parser
    // accepts.
    let jsonl = render_jsonl(&records);
    for (i, line) in jsonl.lines().enumerate() {
        let obj = report::parse(line).unwrap_or_else(|e| panic!("jsonl line {i}: {e}"));
        assert!(obj.get("cycle").is_some(), "jsonl line {i} lacks cycle");
        assert!(obj.get("cat").is_some(), "jsonl line {i} lacks cat");
    }

    // The Chrome trace is one valid JSON document with a traceEvents
    // array.
    let chrome = report::parse(&render_chrome(&records, "smoke")).expect("chrome trace parses");
    let events = chrome
        .get("traceEvents")
        .and_then(report::Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // producer-consumer is a known-conflict workload: the forensics
    // pass must recover at least one violation -> squash causal chain,
    // each naming the offending store and a squashed victim set that
    // includes the violation's victim task.
    assert!(result.report.squashes > 0, "workload must squash");
    let chains = forensics::squash_chains(&records, 4);
    assert!(!chains.is_empty(), "no squash chains reconstructed");
    for chain in &chains {
        assert!(
            chain.squashed.iter().any(|&(_, t)| t == chain.victim),
            "chain at cycle {} squashes {:?} but not its victim {:?}",
            chain.cycle,
            chain.squashed,
            chain.victim
        );
        assert!(forensics::render_chain(chain).contains("violation"));
    }
}

#[test]
fn traced_jsonl_is_byte_identical_across_thread_counts() {
    // Each grid job gets its own per-thread tracer, so the parallel
    // harness must not perturb a cell's event stream: the rendered
    // JSONL is byte-identical at any worker count.
    let jobs = [3u64, 5, 7, 11];
    let render = |threads: usize| -> Vec<String> {
        run_grid_with_threads(&jobs, 0xACE5, threads, |&salt, seed| {
            let (_, tracer) = traced_run(seed ^ salt);
            render_jsonl(&tracer.records())
        })
        .results
    };
    let serial = render(1);
    assert!(serial.iter().all(|s| !s.is_empty()));
    for threads in [2, 8] {
        assert_eq!(
            serial,
            render(threads),
            "traced JSONL diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn disabled_tracer_leaves_experiment_json_byte_identical() {
    // A run with a disabled tracer attached must report exactly what an
    // untraced run reports — the zero-cost claim, checked end to end
    // through the serialized experiment JSON (stats, metrics registry
    // and all).
    let source = kernels::producer_consumer(2_000, 6);
    let memory = MemoryKind::Svc { kb_per_cache: 8 };
    let plain = run_source(&source, memory, cfg(42));
    let disabled = run_source_with(&source, memory, cfg(42), Tracer::disabled());
    assert_eq!(
        experiment_result_json(&plain, 42).render(),
        experiment_result_json(&disabled, 42).render()
    );
}
