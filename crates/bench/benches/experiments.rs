//! Criterion benches, one group per paper artifact.
//!
//! `table2` / `table3` / `fig19` / `fig20` benchmark the *simulation
//! runs* that regenerate each artifact (at a reduced instruction budget —
//! the printed tables come from the `table2`/`table3`/`fig19`/`fig20`
//! binaries, which run the full budget). `protocol` micro-benchmarks the
//! SVC's hot paths (local hits, bus transactions with VCL planning,
//! commits and squashes) and `baselines` the ARB and ideal-memory
//! equivalents — these are the numbers that matter for using this crate
//! as a research simulator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use svc::{IdealMemory, SvcConfig, SvcSystem};
use svc_arb::{ArbConfig, ArbSystem};
use svc_bench::{run_spec95_with, MemoryKind};
use svc_types::{Addr, Cycle, PuId, TaskId, VersionedMemory, Word};
use svc_workloads::Spec95;

const BENCH_BUDGET: u64 = 8_000;

fn table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_miss_ratios");
    g.sample_size(10);
    for b in [Spec95::Compress, Spec95::Mgrid] {
        g.bench_function(format!("svc_4x8KB/{b}"), |bench| {
            bench.iter(|| {
                black_box(run_spec95_with(
                    b,
                    MemoryKind::Svc { kb_per_cache: 8 },
                    BENCH_BUDGET,
                    42,
                ))
            })
        });
        g.bench_function(format!("arb_32KB/{b}"), |bench| {
            bench.iter(|| {
                black_box(run_spec95_with(
                    b,
                    MemoryKind::Arb {
                        hit_cycles: 1,
                        cache_kb: 32,
                    },
                    BENCH_BUDGET,
                    42,
                ))
            })
        });
    }
    g.finish();
}

fn table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_bus_utilization");
    g.sample_size(10);
    for kb in [8usize, 16] {
        g.bench_function(format!("svc_4x{kb}KB/gcc"), |bench| {
            bench.iter(|| {
                black_box(run_spec95_with(
                    Spec95::Gcc,
                    MemoryKind::Svc { kb_per_cache: kb },
                    BENCH_BUDGET,
                    42,
                ))
            })
        });
    }
    g.finish();
}

fn fig19(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig19_ipc_32KB");
    g.sample_size(10);
    for hit in [1u64, 4] {
        g.bench_function(format!("arb_{hit}c/gcc"), |bench| {
            bench.iter(|| {
                black_box(run_spec95_with(
                    Spec95::Gcc,
                    MemoryKind::Arb {
                        hit_cycles: hit,
                        cache_kb: 32,
                    },
                    BENCH_BUDGET,
                    42,
                ))
            })
        });
    }
    g.bench_function("svc_1c/gcc", |bench| {
        bench.iter(|| {
            black_box(run_spec95_with(
                Spec95::Gcc,
                MemoryKind::Svc { kb_per_cache: 8 },
                BENCH_BUDGET,
                42,
            ))
        })
    });
    g.finish();
}

fn fig20(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig20_ipc_64KB");
    g.sample_size(10);
    g.bench_function("arb_2c_64KB/mgrid", |bench| {
        bench.iter(|| {
            black_box(run_spec95_with(
                Spec95::Mgrid,
                MemoryKind::Arb {
                    hit_cycles: 2,
                    cache_kb: 64,
                },
                BENCH_BUDGET,
                42,
            ))
        })
    });
    g.bench_function("svc_4x16KB/mgrid", |bench| {
        bench.iter(|| {
            black_box(run_spec95_with(
                Spec95::Mgrid,
                MemoryKind::Svc { kb_per_cache: 16 },
                BENCH_BUDGET,
                42,
            ))
        })
    });
    g.finish();
}

/// SVC protocol hot paths.
fn protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");

    g.bench_function("svc_local_load_hit", |bench| {
        let mut svc = SvcSystem::new(SvcConfig::final_design(4));
        svc.assign(PuId(0), TaskId(0));
        svc.store(PuId(0), Addr(0), Word(1), Cycle(0))
            .expect("warm");
        let mut now = Cycle(10);
        bench.iter(|| {
            now += 1;
            black_box(svc.load(PuId(0), Addr(0), now).expect("hit"))
        })
    });

    g.bench_function("svc_local_store_hit", |bench| {
        let mut svc = SvcSystem::new(SvcConfig::final_design(4));
        svc.assign(PuId(0), TaskId(0));
        svc.store(PuId(0), Addr(0), Word(1), Cycle(0))
            .expect("warm");
        let mut now = Cycle(10);
        bench.iter(|| {
            now += 1;
            black_box(svc.store(PuId(0), Addr(0), Word(now.0), now).expect("hit"))
        })
    });

    g.bench_function("svc_bus_transfer_with_vcl", |bench| {
        // Repeatedly bounce a line between two tasks' caches: every access
        // is a bus transaction planned by the VCL.
        bench.iter_batched(
            || {
                let mut svc = SvcSystem::new(SvcConfig::final_design(4));
                svc.assign(PuId(0), TaskId(0));
                svc.assign(PuId(1), TaskId(1));
                svc.store(PuId(0), Addr(0), Word(1), Cycle(0))
                    .expect("seed");
                svc
            },
            |mut svc| {
                for i in 0..32u64 {
                    black_box(svc.load(PuId(1), Addr(0), Cycle(10 + i)).expect("xfer"));
                    black_box(
                        svc.store(PuId(0), Addr(0), Word(i), Cycle(11 + i))
                            .expect("inval"),
                    );
                }
                svc
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("svc_commit_squash_cycle", |bench| {
        bench.iter_batched(
            || {
                let mut svc = SvcSystem::new(SvcConfig::final_design(4));
                svc.assign(PuId(0), TaskId(0));
                for a in 0..64u64 {
                    svc.store(PuId(0), Addr(a * 4), Word(a), Cycle(a))
                        .expect("fill");
                }
                svc
            },
            |mut svc| {
                svc.commit(PuId(0), Cycle(1000));
                svc.assign(PuId(0), TaskId(1));
                svc.squash(PuId(0));
                svc
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// ARB and ideal-memory equivalents, for speed comparison.
fn baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines");

    g.bench_function("arb_store_load_pair", |bench| {
        let mut arb = ArbSystem::new(ArbConfig::paper(4, 1, 32));
        arb.assign(PuId(0), TaskId(0));
        arb.assign(PuId(1), TaskId(1));
        let mut now = Cycle(0);
        bench.iter(|| {
            now += 1;
            arb.store(PuId(0), Addr(0), Word(now.0), now)
                .expect("store");
            black_box(arb.load(PuId(1), Addr(0), now).expect("load"))
        })
    });

    g.bench_function("ideal_store_load_pair", |bench| {
        let mut m = IdealMemory::new(4, 1);
        m.assign(PuId(0), TaskId(0));
        m.assign(PuId(1), TaskId(1));
        let mut now = Cycle(0);
        bench.iter(|| {
            now += 1;
            m.store(PuId(0), Addr(0), Word(now.0), now).expect("store");
            black_box(m.load(PuId(1), Addr(0), now).expect("load"))
        })
    });
    g.finish();
}

criterion_group!(benches, table2, table3, fig19, fig20, protocol, baselines);
criterion_main!(benches);
