//! Micro-benchmarks for the simulator's per-transaction hot paths — the
//! allocation-free layers the throughput work targets: pure VCL
//! planning (`plan_read`/`plan_write`), VOL reconstruction from snooped
//! snapshots, cache-array lookup and victim selection, and snooping-bus
//! arbitration. Each runs thousands of times per simulated kilocycle,
//! so these are the numbers that move `sim_cycles_per_sec`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use svc::{order_vol, LineSnapshot, SubMask, SvcConfig, SvcSystem, Vcl};
use svc_mem::{Bus, CacheArray, CacheGeometry, Slot};
use svc_multiscalar::{Engine, EngineConfig};
use svc_sim::epoch::EpochPool;
use svc_types::{Addr, Cycle, LineId, PlannedOp, PuId, TaskId, VersionedMemory};
use svc_workloads::kernels;

/// A realistic snooped line: two committed copies (one the head of the
/// committed chain) and two uncommitted versions in task order, linked
/// by their VOL pointers.
fn snapshots() -> [LineSnapshot; 4] {
    let snap = |i: usize, task, valid: u64, store: u64, committed, next| LineSnapshot {
        pu: PuId(i),
        task,
        valid: SubMask(valid),
        store: SubMask(store),
        load: SubMask::EMPTY,
        committed,
        stale: false,
        arch: false,
        next,
    };
    [
        snap(0, Some(TaskId(4)), 0b1111, 0b0011, true, Some(PuId(1))),
        snap(1, Some(TaskId(5)), 0b1111, 0b0100, true, Some(PuId(2))),
        snap(2, Some(TaskId(6)), 0b1111, 0b1000, false, Some(PuId(3))),
        snap(3, Some(TaskId(7)), 0b0011, 0b0001, false, None),
    ]
}

fn vcl(c: &mut Criterion) {
    let mut g = c.benchmark_group("vcl");
    let vcl = Vcl {
        hybrid_update: true,
        snarfing: true,
        trust_stale: true,
        update_limit: 4,
        retain_flushed: true,
    };
    let snaps = snapshots();
    let snarf = [(PuId(1), TaskId(5))];

    g.bench_function("plan_read", |bench| {
        bench.iter(|| {
            black_box(vcl.plan_read(
                black_box(&snaps),
                PuId(3),
                TaskId(7),
                Some(TaskId(4)),
                SubMask(0b1100),
                &snarf,
            ))
        })
    });

    g.bench_function("plan_write", |bench| {
        bench.iter(|| {
            black_box(vcl.plan_write(
                black_box(&snaps),
                PuId(3),
                TaskId(7),
                SubMask(0b0100),
                SubMask(0b1000),
            ))
        })
    });
    g.finish();
}

fn vol(c: &mut Criterion) {
    let mut g = c.benchmark_group("vol");
    let snaps = snapshots();
    g.bench_function("order_vol_splice", |bench| {
        bench.iter(|| black_box(order_vol(black_box(&snaps))))
    });
    g.finish();
}

/// Minimal slot for exercising the tag array alone.
#[derive(Debug, Clone, Default)]
struct TagSlot {
    line: Option<LineId>,
}

impl Slot for TagSlot {
    fn held_line(&self) -> Option<LineId> {
        self.line
    }
}

fn cache_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_array");
    // The paper's 8KB 4-way point: 32 sets of 16-byte lines.
    let geometry = CacheGeometry::new(32, 4, 4, 4);
    let mut array: CacheArray<TagSlot> = CacheArray::new(geometry);
    for i in 0..96u64 {
        let line = LineId(i);
        let r = array.victim_way(line);
        array.slot_mut(r).line = Some(line);
        array.touch(r);
    }

    g.bench_function("find_hit", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i = (i + 1) % 96;
            black_box(array.find(black_box(LineId(i))))
        })
    });

    g.bench_function("find_miss", |bench| {
        bench.iter(|| black_box(array.find(black_box(LineId(4096)))))
    });

    g.bench_function("victim_way", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i = (i + 1) % 128;
            black_box(array.victim_way(black_box(LineId(i))))
        })
    });
    g.finish();
}

fn bus(c: &mut Criterion) {
    let mut g = c.benchmark_group("bus");
    g.bench_function("arbitration", |bench| {
        // The paper's pipelined bus; contended grants back to back.
        let mut bus = Bus::pipelined(4, 2);
        let mut now = Cycle(0);
        bench.iter(|| {
            now += 1;
            black_box(bus.transact(now, 1))
        })
    });
    g.finish();
}

fn mul(ctx: &u64, job: &u64) -> u64 {
    ctx.wrapping_mul(*job)
}

/// The raw cost of one epoch barrier: dispatch a tiny batch to the
/// pool, compute, collect in job order, reclaim the context. This is
/// the fixed per-cycle overhead a parallel planning pass pays before
/// any planning work happens.
fn epoch_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("epoch");
    for workers in [1usize, 3] {
        let mut pool: EpochPool<u64, u64, u64> = EpochPool::new(workers, mul);
        g.bench_function(format!("barrier_{}lanes", workers + 1), |bench| {
            bench.iter(|| {
                let (ctx, out) = pool.run_epoch(black_box(7), vec![1, 2, 3, 4, 5, 6, 7, 8]);
                black_box((ctx, out))
            })
        });
    }
    g.finish();
}

/// A mid-run SVC system with live task assignments and warm caches, so
/// planned accesses exercise the real snapshot/VOL/VCL path rather than
/// the no-task fallback.
fn warm_system() -> SvcSystem {
    let src = kernels::producer_consumer(2_000, 6);
    let cfg = EngineConfig {
        num_pus: 4,
        seed: 7,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(cfg, SvcSystem::new(SvcConfig::final_design(4)));
    let done = engine.run_until(&src, Some(600));
    assert!(!done, "warm-up run must pause mid-flight");
    engine.into_memory()
}

/// One full plan/merge epoch through `VersionedMemory::plan_batch`:
/// detach the state, shard four predicted accesses over two lanes, plan
/// each (snapshots + VOL + VCL), merge the tokens back in job order and
/// re-attach. The engine pays this once per planned cycle.
fn plan_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan");
    let mut system = warm_system();
    let jobs: Vec<(PuId, PlannedOp)> = (0..4)
        .map(|i| (PuId(i), PlannedOp::Load(Addr(64 * i as u64 + 1024))))
        .collect();
    g.bench_function("batch_4jobs_2lanes", |bench| {
        bench.iter(|| black_box(system.plan_batch(2, black_box(&jobs))))
    });
    g.finish();
}

/// The per-access conflict-footprint lookup (`addr` → cache-set index)
/// the engine records after *every* memory op while plans are live.
fn conflict_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan");
    let system = warm_system();
    g.bench_function("conflict_set_lookup", |bench| {
        let mut a = 0u64;
        bench.iter(|| {
            a = (a + 16) % 8192;
            black_box(system.conflict_set(black_box(Addr(a))))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    vcl,
    vol,
    cache_array,
    bus,
    epoch_barrier,
    plan_batch,
    conflict_set
);
criterion_main!(benches);
