//! Schema-versioned JSON reports for experiment results.
//!
//! Hand-rolled (the build environment is offline; no serde) but
//! complete: a small JSON value model ([`Json`]), a deterministic
//! emitter whose output is byte-identical for identical inputs
//! (insertion-ordered keys, shortest-roundtrip float formatting), and a
//! recursive-descent parser so the `regress` gate can read baselines
//! back.
//!
//! Two document schemas:
//!
//! * [`SCHEMA_EXPERIMENT`] — `results/<name>.json`, one per experiment
//!   binary: the grid parameters plus every run's metrics,
//!   [`MemStats`], and engine report. Deterministic: no wall-clock data.
//! * [`SCHEMA_SNAPSHOT`] — `BENCH_experiments.json`: per-experiment
//!   harness self-measurement (wall seconds, simulated cycles/sec,
//!   committed instrs/sec, thread count), merged read-modify-write so
//!   each binary updates its own entry.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use svc_multiscalar::RunReport;
use svc_sim::metrics::{HistogramSummary, MetricValue, MetricsRegistry};
use svc_sim::profile::{Bucket, ProfileReport};
use svc_sim::stats::{Histogram, Running};
use svc_types::MemStats;

use crate::ExperimentResult;

/// Schema tag of `results/<name>.json` documents.
pub const SCHEMA_EXPERIMENT: &str = "svc-experiments/v1";
/// Schema tag of experiment documents that carry a `failures` array
/// (emitted only when a grid had failed cells; fully-healthy grids keep
/// emitting byte-identical [`SCHEMA_EXPERIMENT`] documents).
pub const SCHEMA_EXPERIMENT_V2: &str = "svc-experiments/v2";
/// Schema tag of the `BENCH_experiments.json` perf snapshot. The v2
/// document keeps the v1 `experiments` section and adds two optional
/// sections maintained by the `bench` trajectory driver: `previous`
/// (the experiments section as it stood before the last
/// [`rotate_snapshot`]) and `speedup` (per-experiment and aggregate
/// simulated-cycles-per-second ratios of `experiments` over
/// `previous`). v1 documents parse fine: both sections are absent.
pub const SCHEMA_SNAPSHOT: &str = "svc-bench-snapshot/v3";
/// Schema tag of `results/<name>.profile.json` cycle-accounting
/// documents (emitted only when `SVC_PROFILE` is set).
pub const SCHEMA_PROFILE: &str = "svc-profile/v1";
/// Schema tag of `svc-analyze`'s offline-analysis documents (cascade
/// attribution, version lifetimes, contention heatmaps, run diffs).
pub const SCHEMA_ANALYSIS: &str = "svc-analysis/v1";
/// Schema tag of the `results/soak.json` snapshot `svc-sim serve`
/// flushes on shutdown (see [`crate::soak::soak_doc`]).
pub const SCHEMA_SOAK: &str = "svc-soak/v1";

// ---------------------------------------------------------------------
// Value model
// ---------------------------------------------------------------------

/// A JSON value. Object keys keep insertion order so emission is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Counters in this workspace stay far below 2^53, so
    /// `f64` holds them exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder seed.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a key in an object; panics on non-objects.
    pub fn set(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
                self
            }
            _ => panic!("set() on a non-object"),
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline —
    /// deterministic byte-for-byte for equal values.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Scalars inline; nested structures one per line.
                let nested = items
                    .iter()
                    .any(|v| matches!(v, Json::Arr(_) | Json::Obj(_)));
                if nested {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(if i == 0 { "\n" } else { ",\n" });
                        indent(out, depth + 1);
                        item.write_into(out, depth + 1);
                    }
                    out.push('\n');
                    indent(out, depth);
                    out.push(']');
                } else {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write_into(out, depth);
                    }
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null"); // JSON has no NaN/inf
    } else if x == x.trunc() && x.abs() < 9e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Rust's shortest-roundtrip float formatting is deterministic.
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parses a JSON document (as produced by [`Json::render`], though any
/// standard JSON is accepted).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected byte {:?} at offset {}",
                b as char, self.pos
            )),
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. Validate at most the 4
                    // bytes the scalar can span — validating the whole
                    // remaining input here makes parsing quadratic,
                    // which megabyte-scale trace documents actually hit.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(chunk) {
                        Ok(text) => text.chars().next().expect("non-empty"),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                                .expect("non-empty")
                        }
                        Err(e) => return Err(e.to_string()),
                    };
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] at byte {}: {other:?}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} at byte {}: {other:?}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Serializers for the simulator's stats types
// ---------------------------------------------------------------------

/// [`MemStats`] as an object: every counter (via [`MemStats::fields`],
/// so new counters appear automatically) plus the derived ratios.
pub fn mem_stats_json(stats: &MemStats) -> Json {
    let mut obj = Json::obj();
    for (name, value) in stats.fields() {
        obj = obj.set(name, value.into());
    }
    obj.set("miss_ratio", stats.miss_ratio().into())
        .set("local_hit_ratio", stats.local_hit_ratio().into())
}

/// A [`Histogram`] as `{width, buckets, overflow, total}`.
pub fn histogram_json(h: &Histogram) -> Json {
    Json::obj()
        .set("width", h.width().into())
        .set(
            "buckets",
            Json::Arr(h.bucket_counts().iter().map(|&c| c.into()).collect()),
        )
        .set("overflow", h.overflow().into())
        .set("total", h.total().into())
}

/// A [`Running`] accumulator as `{count, sum, mean, min, max}`.
pub fn running_json(r: &Running) -> Json {
    Json::obj()
        .set("count", r.count().into())
        .set("sum", r.sum().into())
        .set("mean", r.mean().into())
        .set("min", r.min().into())
        .set("max", r.max().into())
}

/// A full engine [`RunReport`]: scalar counters (via
/// [`RunReport::counter_fields`]), derived metrics, the task-length
/// histogram, and the memory-system stats.
pub fn run_report_json(report: &RunReport) -> Json {
    let mut obj = Json::obj();
    for (name, value) in report.counter_fields() {
        obj = obj.set(name, value.into());
    }
    obj.set("hit_cycle_limit", report.hit_cycle_limit.into())
        .set("ipc", report.ipc().into())
        .set("avg_task_len", report.avg_task_len().into())
        .set("bus_utilization", report.bus_utilization().into())
        .set("task_lengths", histogram_json(&report.task_lengths))
        .set("mem", mem_stats_json(&report.mem))
}

/// A [`HistogramSummary`] as `{total, overflow, p50, p90, p99}`
/// (absent quantiles — empty histogram — serialize to `null`).
pub fn histogram_summary_json(s: &HistogramSummary) -> Json {
    let q = |v: Option<u64>| v.map_or(Json::Null, Json::from);
    Json::obj()
        .set("total", s.total.into())
        .set("overflow", s.overflow.into())
        .set("p50", q(s.p50))
        .set("p90", q(s.p90))
        .set("p99", q(s.p99))
}

/// A [`MetricsRegistry`] as an object, keys in registration order.
/// Unlabeled entries keep their bare names (existing artifacts are
/// byte-identical); labeled entries render their series key as
/// `name{k="v",…}` and full distributions reuse the [`histogram_json`]
/// shape.
pub fn metrics_json(reg: &MetricsRegistry) -> Json {
    let mut obj = Json::obj();
    for e in reg.iter_entries() {
        let v = match &e.value {
            MetricValue::Counter(c) => Json::from(*c),
            MetricValue::Gauge(g) => Json::from(*g),
            MetricValue::Histogram(s) => histogram_summary_json(s),
            MetricValue::Distribution(h) => histogram_json(h),
        };
        let key = if e.labels.is_empty() {
            e.name.clone()
        } else {
            let labels: Vec<String> = e
                .labels
                .iter()
                .map(|(k, val)| format!("{k}=\"{}\"", svc_sim::metrics::escape_label_value(val)))
                .collect();
            format!("{}{{{}}}", e.name, labels.join(","))
        };
        obj = obj.set(&key, v);
    }
    obj
}

/// A [`BucketSet`](svc_sim::profile::BucketSet) as an object, one key
/// per bucket in [`Bucket::EVERY`] order.
fn bucket_set_json(set: &[u64; svc_sim::profile::NUM_BUCKETS]) -> Json {
    let mut obj = Json::obj();
    for b in Bucket::EVERY {
        obj = obj.set(b.name(), set[b as usize].into());
    }
    obj
}

/// A [`ProfileReport`] as an object: per-PU and total bucket
/// attribution, the conservation check, the interval time series (raw
/// cumulative counters plus rates derived between consecutive rows),
/// and the top wasted-work addresses.
pub fn profile_report_json(p: &ProfileReport) -> Json {
    let rate = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    let mut series = Vec::with_capacity(p.samples.len());
    let mut prev_cycle = 0u64;
    let mut prev_instrs = 0u64;
    let mut prev_squashes = 0u64;
    let mut prev_busy = 0u64;
    for s in &p.samples {
        let dc = s.cycle - prev_cycle;
        series.push(
            Json::obj()
                .set("cycle", s.cycle.into())
                .set("committed_instrs", s.committed_instrs.into())
                .set("squashes", s.squashes.into())
                .set("bus_busy_cycles", s.bus_busy_cycles.into())
                .set("outstanding_misses", s.outstanding_misses.into())
                .set("live_versions", s.live_versions.into())
                .set("ipc", rate(s.committed_instrs - prev_instrs, dc).into())
                .set(
                    "bus_utilization",
                    rate(s.bus_busy_cycles - prev_busy, dc).into(),
                )
                .set("squash_rate", rate(s.squashes - prev_squashes, dc).into()),
        );
        prev_cycle = s.cycle;
        prev_instrs = s.committed_instrs;
        prev_squashes = s.squashes;
        prev_busy = s.bus_busy_cycles;
    }
    let wasted: Vec<Json> = p
        .wasted_addrs
        .iter()
        .map(|&(addr, count)| {
            Json::obj()
                .set("addr", addr.into())
                .set("squashed_accesses", count.into())
        })
        .collect();
    let mut obj = Json::obj()
        .set("num_pus", p.num_pus.into())
        .set("cycles", p.cycles.into())
        .set("epoch", p.epoch.into())
        .set("total", bucket_set_json(&p.totals()))
        .set(
            "per_pu",
            Json::Arr(p.per_pu.iter().map(bucket_set_json).collect()),
        )
        .set(
            "conservation",
            Json::obj()
                .set("expected", p.expected().into())
                .set("attributed", p.attributed().into())
                .set("ok", p.conservation_ok().into()),
        )
        .set("series", Json::Arr(series))
        .set("wasted_addrs", Json::Arr(wasted));
    // Only rolling-window runs carry this key, so documents from runs
    // that never evicted a row stay byte-identical to before the window
    // existed.
    if p.intervals_dropped > 0 {
        obj = obj.set("intervals_dropped", p.intervals_dropped.into());
    }
    obj
}

/// The `results/<name>.profile.json` document envelope: one entry per
/// profiled grid cell, in grid order.
pub fn profile_doc(name: &str, budget: u64, grid_seed: u64, runs: Vec<Json>) -> Json {
    Json::obj()
        .set("schema", SCHEMA_PROFILE.into())
        .set("experiment", name.into())
        .set("budget", budget.into())
        .set("grid_seed", grid_seed.into())
        .set("runs", Json::Arr(runs))
}

/// One grid cell's result: workload, memory label, seed, the paper's
/// three metrics plus the squash count and MSHR combine rate (the
/// regression gate's per-cell diff set), the full engine report, and
/// the unified metrics registry.
pub fn experiment_result_json(result: &ExperimentResult, seed: u64) -> Json {
    Json::obj()
        .set("workload", result.workload.as_str().into())
        .set("memory", result.memory.as_str().into())
        .set("seed", seed.into())
        .set("ipc", result.ipc.into())
        .set("miss_ratio", result.miss_ratio.into())
        .set("bus_utilization", result.bus_utilization.into())
        .set("squashes", result.report.squashes.into())
        .set("wasted_instrs", result.report.wasted_instrs.into())
        .set(
            "squash_recovery_cycles",
            result.report.squash_recovery_cycles.into(),
        )
        .set(
            "mshr_combine_rate",
            result.report.mem.mshr_combine_rate().into(),
        )
        .set("report", run_report_json(&result.report))
        .set("metrics", metrics_json(&result.metrics()))
}

/// The `results/<name>.json` document envelope.
pub fn experiment_doc(name: &str, budget: u64, grid_seed: u64, runs: Vec<Json>) -> Json {
    Json::obj()
        .set("schema", SCHEMA_EXPERIMENT.into())
        .set("experiment", name.into())
        .set("budget", budget.into())
        .set("grid_seed", grid_seed.into())
        .set("runs", Json::Arr(runs))
}

/// One [`JobFailure`] as `{index, seed, kind, detail, attempts}`.
pub fn job_failure_json(f: &crate::harness::JobFailure) -> Json {
    Json::obj()
        .set("index", f.index.into())
        .set("seed", f.seed.into())
        .set("kind", f.error.kind().into())
        .set("detail", f.error.detail().into())
        .set("attempts", Json::Num(f.attempts as f64))
}

/// The experiment document for a grid that may have failed cells.
///
/// With no failures this is exactly [`experiment_doc`] — byte-identical
/// `svc-experiments/v1` output, so healthy artifact regeneration never
/// drifts. With failures the schema becomes
/// [`SCHEMA_EXPERIMENT_V2`] and a `failures` array (grid order) is
/// appended after `runs`.
pub fn experiment_doc_failsafe(
    name: &str,
    budget: u64,
    grid_seed: u64,
    runs: Vec<Json>,
    failures: &[crate::harness::JobFailure],
) -> Json {
    if failures.is_empty() {
        return experiment_doc(name, budget, grid_seed, runs);
    }
    Json::obj()
        .set("schema", SCHEMA_EXPERIMENT_V2.into())
        .set("experiment", name.into())
        .set("budget", budget.into())
        .set("grid_seed", grid_seed.into())
        .set("runs", Json::Arr(runs))
        .set(
            "failures",
            Json::Arr(failures.iter().map(job_failure_json).collect()),
        )
}

// ---------------------------------------------------------------------
// File output
// ---------------------------------------------------------------------

/// Where `results/*.json` artifacts go: `SVC_RESULTS_DIR` or
/// `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("SVC_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Crash-atomic file write for result artifacts: write to a `.tmp`
/// sibling, fsync, rename over the destination. A reader (or a process
/// killed mid-write) sees either the old complete file or the new
/// complete file, never a torn one. All harness artifact writers go
/// through here.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    svc_sim::checkpoint::write_atomic(path, bytes)
}

/// Writes `doc` to `results/<name>.json`, creating the directory.
pub fn write_experiment(name: &str, doc: &Json) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    write_atomic(&path, doc.render().as_bytes())?;
    Ok(path)
}

/// The harness's per-experiment self-measurement (the perf snapshot
/// entry). Wall-clock data lives only here, never in the deterministic
/// experiment documents.
#[derive(Debug, Clone, Copy)]
pub struct SelfMeasurement {
    /// Wall-clock seconds for the whole grid.
    pub wall_s: f64,
    /// Harness worker threads used (inter-run parallelism).
    pub threads: usize,
    /// Engine lanes per run (intra-run parallelism, `SVC_ENGINE_THREADS`).
    pub engine_threads: usize,
    /// Logical cores on the measuring host.
    pub host_cores: usize,
    /// Grid cells executed.
    pub jobs: usize,
    /// Total simulated cycles across the grid.
    pub sim_cycles: u64,
    /// Total committed instructions across the grid.
    pub committed_instrs: u64,
}

impl SelfMeasurement {
    /// Aggregates a grid's engine reports plus the harness timing.
    /// `engine_threads` and `host_cores` come from the environment: the
    /// measurement describes the conditions the wall clock ran under.
    pub fn from_reports<'a>(
        reports: impl Iterator<Item = &'a RunReport>,
        wall_s: f64,
        threads: usize,
    ) -> SelfMeasurement {
        let mut jobs = 0;
        let mut sim_cycles = 0;
        let mut committed_instrs = 0;
        for r in reports {
            jobs += 1;
            sim_cycles += r.cycles;
            committed_instrs += r.committed_instrs;
        }
        SelfMeasurement {
            wall_s,
            threads,
            engine_threads: svc_multiscalar::engine_threads_from_env(),
            host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            jobs,
            sim_cycles,
            committed_instrs,
        }
    }

    /// Simulated cycles per wall second.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.sim_cycles as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Committed instructions per wall second.
    pub fn instrs_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.committed_instrs as f64 / self.wall_s
        } else {
            0.0
        }
    }

    fn to_json(self) -> Json {
        Json::obj()
            .set("wall_s", self.wall_s.into())
            .set("threads", self.threads.into())
            .set("engine_threads", self.engine_threads.into())
            .set("host_cores", self.host_cores.into())
            .set("jobs", self.jobs.into())
            .set("sim_cycles", self.sim_cycles.into())
            .set("committed_instrs", self.committed_instrs.into())
            .set("sim_cycles_per_sec", self.cycles_per_sec().into())
            .set("committed_instrs_per_sec", self.instrs_per_sec().into())
    }
}

/// Path of the perf snapshot: `SVC_BENCH_SNAPSHOT` or
/// `./BENCH_experiments.json`.
pub fn snapshot_path() -> PathBuf {
    std::env::var_os("SVC_BENCH_SNAPSHOT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_experiments.json"))
}

/// Merges one experiment's self-measurement into the perf snapshot
/// (read-modify-write keyed by experiment name, so binaries can run in
/// any order or subset).
pub fn record_snapshot(experiment: &str, m: SelfMeasurement) -> io::Result<PathBuf> {
    let path = snapshot_path();
    record_snapshot_at(&path, experiment, m)?;
    Ok(path)
}

fn record_snapshot_at(path: &Path, experiment: &str, m: SelfMeasurement) -> io::Result<()> {
    let existing = match std::fs::read_to_string(path) {
        Ok(text) => parse(&text).ok(),
        Err(_) => None,
    };
    let experiments = existing
        .as_ref()
        .and_then(|doc| doc.get("experiments"))
        .cloned()
        .unwrap_or_else(Json::obj)
        .set(experiment, m.to_json());
    let previous = existing.as_ref().and_then(|doc| doc.get("previous"));
    let mut doc = Json::obj()
        .set("schema", SCHEMA_SNAPSHOT.into())
        .set("experiments", experiments.clone());
    if let Some(prev) = previous {
        doc = doc.set("previous", prev.clone());
        if let Some(speedup) = speedup_json(&experiments, prev) {
            doc = doc.set("speedup", speedup);
        }
    }
    write_atomic(path, doc.render().as_bytes())
}

/// Rotates the perf snapshot: the current `experiments` section becomes
/// `previous`, ready for a fresh sweep to fill `experiments` and let
/// [`record_snapshot`] compute `speedup` against the rotated baseline.
/// A missing or empty snapshot is left untouched.
pub fn rotate_snapshot() -> io::Result<PathBuf> {
    let path = snapshot_path();
    rotate_snapshot_at(&path)?;
    Ok(path)
}

fn rotate_snapshot_at(path: &Path) -> io::Result<()> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(());
    };
    let Ok(doc) = parse(&text) else {
        return Ok(());
    };
    let Some(experiments) = doc.get("experiments") else {
        return Ok(());
    };
    if experiments.as_obj().is_none_or(|o| o.is_empty()) {
        return Ok(());
    }
    let rotated = Json::obj()
        .set("schema", SCHEMA_SNAPSHOT.into())
        .set("experiments", Json::obj())
        .set("previous", experiments.clone());
    write_atomic(path, rotated.render().as_bytes())
}

/// Extracts `(wall_s, sim_cycles, sim_cycles_per_sec)` from one
/// snapshot experiment entry.
fn snapshot_entry(entries: &Json, name: &str) -> Option<(f64, f64, f64)> {
    let e = entries.get(name)?;
    Some((
        e.get("wall_s")?.as_f64()?,
        e.get("sim_cycles")?.as_f64()?,
        e.get("sim_cycles_per_sec")?.as_f64()?,
    ))
}

/// The `speedup` section: per-experiment `sim_cycles_per_sec` ratios of
/// `current` over `previous` for every experiment present in both, plus
/// the aggregate ratio of total simulated cycles per total wall second
/// over the common set. `None` when the sections share no experiments.
fn speedup_json(current: &Json, previous: &Json) -> Option<Json> {
    let mut per = Json::obj();
    let mut common = 0usize;
    let (mut cur_cycles, mut cur_wall) = (0.0, 0.0);
    let (mut prev_cycles, mut prev_wall) = (0.0, 0.0);
    for (name, _) in current.as_obj()? {
        let Some((cw, cc, ccps)) = snapshot_entry(current, name) else {
            continue;
        };
        let Some((pw, pc, pcps)) = snapshot_entry(previous, name) else {
            continue;
        };
        if pcps <= 0.0 {
            continue;
        }
        per = per.set(name, (ccps / pcps).into());
        common += 1;
        cur_cycles += cc;
        cur_wall += cw;
        prev_cycles += pc;
        prev_wall += pw;
    }
    if common == 0 || cur_wall <= 0.0 || prev_wall <= 0.0 || prev_cycles <= 0.0 {
        return None;
    }
    let aggregate = (cur_cycles / cur_wall) / (prev_cycles / prev_wall);
    Some(
        Json::obj()
            .set("aggregate", aggregate.into())
            .set("per_experiment", per),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_parses_back() {
        let doc = Json::obj()
            .set("schema", SCHEMA_EXPERIMENT.into())
            .set("n", 42u64.into())
            .set("x", 0.125.into())
            .set("flag", true.into())
            .set("name", "a \"quoted\" name\n".into())
            .set("arr", Json::Arr(vec![1u64.into(), 2u64.into()]))
            .set("nested", Json::obj().set("empty", Json::Arr(vec![])));
        let a = doc.render();
        let b = doc.render();
        assert_eq!(a, b);
        let back = parse(&a).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn numbers_render_integers_exactly() {
        let mut s = String::new();
        write_number(&mut s, 400000.0);
        assert_eq!(s, "400000");
        s.clear();
        write_number(&mut s, 0.035);
        assert_eq!(s, "0.035");
        s.clear();
        write_number(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn parser_accepts_standard_json() {
        let v = parse(r#" {"a": [1, 2.5, null, true, "xA"], "b": {}} "#).expect("ok");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(5)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[4].as_str(),
            Some("xA")
        );
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("42 garbage").is_err());
    }

    #[test]
    fn histogram_and_running_serialize() {
        let mut h = Histogram::new(8, 4);
        h.record(3);
        h.record(100);
        let j = histogram_json(&h);
        assert_eq!(j.get("width").and_then(Json::as_f64), Some(8.0));
        assert_eq!(j.get("overflow").and_then(Json::as_f64), Some(1.0));

        let mut r = Running::new();
        r.push(2.0);
        r.push(4.0);
        let j = running_json(&r);
        assert_eq!(j.get("mean").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn failsafe_doc_is_v1_bytes_when_healthy_and_v2_with_failures() {
        use crate::harness::{JobError, JobFailure};
        let runs = || vec![Json::obj().set("ipc", 1.5.into())];
        let healthy = experiment_doc_failsafe("t", 1000, 7, runs(), &[]);
        assert_eq!(
            healthy.render(),
            experiment_doc("t", 1000, 7, runs()).render()
        );

        let failures = [JobFailure {
            index: 3,
            seed: 99,
            error: JobError::Panic("boom".to_string()),
            attempts: 2,
        }];
        let degraded = experiment_doc_failsafe("t", 1000, 7, runs(), &failures);
        assert_eq!(
            degraded.get("schema").and_then(Json::as_str),
            Some(SCHEMA_EXPERIMENT_V2)
        );
        let fj = &degraded.get("failures").unwrap().as_arr().unwrap()[0];
        assert_eq!(fj.get("kind").and_then(Json::as_str), Some("panic"));
        assert_eq!(fj.get("detail").and_then(Json::as_str), Some("boom"));
        assert_eq!(fj.get("index").and_then(Json::as_f64), Some(3.0));
        assert_eq!(fj.get("attempts").and_then(Json::as_f64), Some(2.0));
        // Round-trips through the parser like any other document.
        assert_eq!(parse(&degraded.render()).expect("parses"), degraded);
    }

    #[test]
    fn rotate_then_record_computes_speedup() {
        let dir = std::env::temp_dir().join("svc_report_rotate_test");
        std::fs::create_dir_all(&dir).expect("tmp");
        let path = dir.join("BENCH_experiments.json");
        let _ = std::fs::remove_file(&path);

        // Rotating a missing snapshot is a no-op.
        rotate_snapshot_at(&path).expect("rotate missing");
        assert!(!path.exists());

        let slow = SelfMeasurement {
            wall_s: 2.0,
            threads: 1,
            engine_threads: 1,
            host_cores: 8,
            jobs: 2,
            sim_cycles: 1000,
            committed_instrs: 500,
        };
        record_snapshot_at(&path, "table2", slow).expect("write");
        record_snapshot_at(&path, "fig19", slow).expect("write");

        rotate_snapshot_at(&path).expect("rotate");
        let doc = parse(&std::fs::read_to_string(&path).expect("read")).expect("parse");
        assert_eq!(
            doc.get("experiments")
                .and_then(Json::as_obj)
                .map(<[_]>::len),
            Some(0)
        );
        assert!(doc.get("previous").and_then(|p| p.get("table2")).is_some());

        // A 2x-faster rerun of one experiment: per-experiment and
        // aggregate speedups are both 2 (fig19 has no current entry yet,
        // so it drops out of the common set).
        let fast = SelfMeasurement {
            wall_s: 1.0,
            ..slow
        };
        record_snapshot_at(&path, "table2", fast).expect("write");
        let doc = parse(&std::fs::read_to_string(&path).expect("read")).expect("parse");
        let speedup = doc.get("speedup").expect("speedup");
        assert_eq!(speedup.get("aggregate").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            speedup
                .get("per_experiment")
                .and_then(|p| p.get("table2"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
        assert!(speedup
            .get("per_experiment")
            .and_then(|p| p.get("fig19"))
            .is_none());

        // Rotating again promotes the fresh sweep and drops speedup.
        rotate_snapshot_at(&path).expect("rotate");
        let doc = parse(&std::fs::read_to_string(&path).expect("read")).expect("parse");
        assert!(doc.get("speedup").is_none());
        assert_eq!(
            doc.get("previous")
                .and_then(|p| p.get("table2"))
                .and_then(|t| t.get("wall_s"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn v2_snapshot_rotates_and_speeds_up_against_v3() {
        // A committed snapshot from before the schema bump: entries
        // carry no engine_threads/host_cores and the old schema tag.
        let dir = std::env::temp_dir().join("svc_report_v2_compat_test");
        std::fs::create_dir_all(&dir).expect("tmp");
        let path = dir.join("BENCH_experiments.json");
        let v2_entry = Json::obj()
            .set("wall_s", 2.0.into())
            .set("threads", 1.0.into())
            .set("jobs", 2.0.into())
            .set("sim_cycles", 1000.0.into())
            .set("committed_instrs", 500.0.into())
            .set("sim_cycles_per_sec", 500.0.into())
            .set("committed_instrs_per_sec", 250.0.into());
        let v2 = Json::obj()
            .set("schema", "svc-bench-snapshot/v2".into())
            .set("experiments", Json::obj().set("table2", v2_entry));
        std::fs::write(&path, v2.render()).expect("seed v2 snapshot");

        // Rotation promotes the v2 entries to `previous` unchanged and
        // upgrades the document tag.
        rotate_snapshot_at(&path).expect("rotate v2");
        let doc = parse(&std::fs::read_to_string(&path).expect("read")).expect("parse");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(SCHEMA_SNAPSHOT)
        );
        assert!(doc.get("previous").and_then(|p| p.get("table2")).is_some());

        // A fresh v3 measurement computes its speedup against the v2
        // baseline: readers only touch the fields both schemas share.
        let fast = SelfMeasurement {
            wall_s: 1.0,
            threads: 1,
            engine_threads: 2,
            host_cores: 8,
            jobs: 2,
            sim_cycles: 1000,
            committed_instrs: 500,
        };
        record_snapshot_at(&path, "table2", fast).expect("record v3");
        let doc = parse(&std::fs::read_to_string(&path).expect("read")).expect("parse");
        let entry = doc
            .get("experiments")
            .and_then(|e| e.get("table2"))
            .unwrap();
        assert_eq!(
            entry.get("engine_threads").and_then(Json::as_f64),
            Some(2.0)
        );
        assert_eq!(entry.get("host_cores").and_then(Json::as_f64), Some(8.0));
        assert_eq!(
            doc.get("speedup")
                .and_then(|s| s.get("aggregate"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn snapshot_merge_keeps_other_entries() {
        let dir = std::env::temp_dir().join("svc_report_test");
        std::fs::create_dir_all(&dir).expect("tmp");
        let path = dir.join("BENCH_experiments.json");
        let _ = std::fs::remove_file(&path);
        let m = SelfMeasurement {
            wall_s: 1.0,
            threads: 4,
            engine_threads: 2,
            host_cores: 8,
            jobs: 2,
            sim_cycles: 1000,
            committed_instrs: 500,
        };
        record_snapshot_at(&path, "table2", m).expect("write");
        record_snapshot_at(&path, "fig19", m).expect("write");
        let doc = parse(&std::fs::read_to_string(&path).expect("read")).expect("parse");
        let exps = doc.get("experiments").expect("experiments");
        assert!(exps.get("table2").is_some() && exps.get("fig19").is_some());
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(SCHEMA_SNAPSHOT)
        );
    }
}
