//! The soak loop behind `svc-sim serve`: an unbounded, seeded, rotating
//! schedule of workload slices driven through the SVC engine, with
//! periodic fault storms and live-exportable state.
//!
//! Time is measured in **ticks**; each tick runs one bounded *slice* (a
//! kernel workload under a committed-instruction budget) on a fresh
//! final-design SVC system, with the invariant watchdog and the
//! cycle-accounting profiler always attached. The [`StormSchedule`]
//! decides which ticks run under uniform fault injection; the calm ticks
//! in between let the recovery machinery drain, so `/healthz` can report
//! whether storms recover cleanly.
//!
//! Everything is a pure function of ([`SoakConfig::seed`], tick count):
//! workload rotation, conflict-density draws, per-slice engine seeds and
//! per-storm fault streams all derive from SplitMix64 streams, so a
//! bounded-tick soak is byte-identity testable — `serve --ticks N
//! --seed S` writes the same `results/soak.json` every time, on any
//! harness thread count (the loop itself is single-threaded; only the
//! HTTP exporter lives on another thread, and it only ever reads
//! pre-rendered strings).

use std::cell::RefCell;
use std::rc::Rc;

use svc::{SvcConfig, SvcSystem};
use svc_multiscalar::{Engine, EngineConfig, EpochSink, EpochSnapshot, RunReport, VecTaskSource};
use svc_sim::fault::{FaultSite, Faults, StormSchedule, NUM_SITES};
use svc_sim::metrics::MetricsRegistry;
use svc_sim::profile::{ProfileReport, Profiler, Sample, NUM_BUCKETS};
use svc_sim::rng::SplitMix64;
use svc_sim::stats::Histogram;
use svc_workloads::kernels;

use crate::report::{self, Json};

/// Stream-derivation salts (arbitrary odd constants, fixed forever so
/// soak artifacts stay reproducible across versions).
const SEED_SALT: u64 = 0x5EED_5A17;
const DENSITY_SALT: u64 = 0xDE45_17F1;
const STORM_SALT: u64 = 0x5707_3352;

/// The nine rotating kernel mixes plus the randomized conflict-density
/// variant slots (three per rotation, so roughly a quarter of ticks are
/// density-swept).
const ROTATION: usize = 12;

/// Mix label per rotation slot index (slots ≥ 9 are density variants).
const MIX_NAMES: [&str; 10] = [
    "streaming",
    "readonly-sharing",
    "producer-consumer",
    "reduction",
    "false-sharing",
    "revisit",
    "pointer-chase",
    "streaming-wide",
    "pointer-chase-deep",
    "conflict-density",
];

/// Configuration of one soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Master seed; every derived stream hangs off it.
    pub seed: u64,
    /// Ticks to run (0 = unbounded; the observer or a signal stops it).
    pub ticks: u64,
    /// Tasks generated per slice workload.
    pub slice_tasks: u64,
    /// Committed-instruction budget per slice.
    pub slice_budget: u64,
    /// KB per private SVC cache.
    pub kb: usize,
    /// Number of PUs.
    pub pus: usize,
    /// Profiler sampling epoch (cycles) within each slice.
    pub epoch: u64,
    /// Per-slice profiler rolling window (samples; 0 = unbounded).
    pub window: usize,
    /// Rolling retention of the global `/profile` interval series.
    pub sample_window: usize,
    /// Watchdog sweep period (cycles) within each slice.
    pub watchdog: u64,
    /// The fault-storm schedule.
    pub storm: StormSchedule,
    /// Intra-run parallel planning lanes per slice engine (0 = resolve
    /// from `SVC_ENGINE_THREADS` at engine construction). A host
    /// execution detail: slice results are byte-identical at any value,
    /// so it is deliberately excluded from checkpoint payloads — a
    /// resumed soak may run at a different thread count.
    pub engine_threads: usize,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            seed: 42,
            ticks: 0,
            slice_tasks: 256,
            slice_budget: 20_000,
            kb: 8,
            pus: crate::NUM_PUS,
            epoch: 2_048,
            window: 64,
            sample_window: 256,
            watchdog: 256,
            storm: StormSchedule::default(),
            engine_threads: 0,
        }
    }
}

/// Cumulative soak state, updated once per tick and snapshotted into the
/// telemetry exporter by the observer callback.
#[derive(Debug, Clone)]
pub struct SoakState {
    /// Ticks (slices) completed.
    pub ticks: u64,
    /// Total simulated cycles across all slices.
    pub cycles: u64,
    /// Total committed instructions.
    pub committed_instrs: u64,
    /// Total committed tasks.
    pub committed_tasks: u64,
    /// Total squash events.
    pub squashes: u64,
    /// Total wasted (squashed) instructions.
    pub wasted_instrs: u64,
    /// Invariant violations the watchdog found (0 = healthy).
    pub watchdog_violations: u64,
    /// Total injected faults across all storm slices.
    pub faults_injected: u64,
    /// Per-site injected-fault counts, in [`FaultSite::EVERY`] order.
    pub fault_counts: [u64; NUM_SITES],
    /// Distinct storms entered so far.
    pub storms_started: u64,
    /// Slices run under storm injection.
    pub storm_slices: u64,
    /// Storm slices that completed with a clean watchdog.
    pub storm_slices_clean: u64,
    /// Whether the most recent tick was stormy.
    pub storm_active: bool,
    /// Slices completed per mix, in [`MIX_NAMES`] order.
    pub slices_per_mix: [u64; MIX_NAMES.len()],
    /// Mix label of the most recent slice.
    pub last_mix: &'static str,
    /// Interval rows dropped by rolling windows (per-slice profiler
    /// windows plus the global series window).
    pub intervals_dropped: u64,
    /// Idle-gap fast-forward jumps taken by slice engines.
    pub ff_jumps: u64,
    /// Simulated cycles skipped by those jumps.
    pub ff_skipped_cycles: u64,
    /// Planning lanes the most recent slice engine ran with. Host
    /// telemetry: excluded from [`SoakState::metrics`], `soak_doc` and
    /// checkpoints, so soak artifacts stay thread-count-independent.
    pub engine_threads: u64,
    /// Cumulative parallel planning barriers across slice engines (this
    /// process only — resets to 0 on resume, like wall-clock data).
    pub engine_epoch_barriers: u64,
    /// Cumulative wall nanoseconds spent inside parallel plan/merge
    /// epochs (this process only — resets to 0 on resume).
    pub engine_plan_nanos: u64,
    /// Dispatch-to-commit latency of committed tasks (cycles).
    pub task_latency: Histogram,
    /// Tasks torn down per squash event.
    pub squash_depth: Histogram,
    /// Bus-wait cycles accrued per profiler epoch.
    pub bus_wait: Histogram,
    /// MSHR occupancy (outstanding misses) at each epoch boundary.
    pub mshr_occupancy: Histogram,
    /// Per-PU stall-attribution bucket totals, summed over slices.
    pub per_pu: Vec<[u64; NUM_BUCKETS]>,
    /// Rolling global interval series (slice samples re-based onto the
    /// soak-wide cycle/counter axes).
    pub samples: Vec<Sample>,
    /// Offsets for re-basing the next slice's samples.
    base_cycles: u64,
    base_instrs: u64,
    base_squashes: u64,
    base_busy: u64,
    last_storm: Option<u64>,
}

impl SoakState {
    fn new(cfg: &SoakConfig) -> SoakState {
        SoakState {
            ticks: 0,
            cycles: 0,
            committed_instrs: 0,
            committed_tasks: 0,
            squashes: 0,
            wasted_instrs: 0,
            watchdog_violations: 0,
            faults_injected: 0,
            fault_counts: [0; NUM_SITES],
            storms_started: 0,
            storm_slices: 0,
            storm_slices_clean: 0,
            storm_active: false,
            slices_per_mix: [0; MIX_NAMES.len()],
            last_mix: "",
            intervals_dropped: 0,
            ff_jumps: 0,
            ff_skipped_cycles: 0,
            engine_threads: 0,
            engine_epoch_barriers: 0,
            engine_plan_nanos: 0,
            task_latency: Histogram::new(64, 64),
            squash_depth: Histogram::new(1, 8),
            bus_wait: Histogram::new(256, 32),
            mshr_occupancy: Histogram::new(1, 16),
            per_pu: vec![[0; NUM_BUCKETS]; cfg.pus],
            samples: Vec::new(),
            base_cycles: 0,
            base_instrs: 0,
            base_squashes: 0,
            base_busy: 0,
            last_storm: None,
        }
    }

    /// Overall IPC so far.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_instrs as f64 / self.cycles as f64
        }
    }

    /// The registry behind `/metrics`: soak counters and gauges, labeled
    /// per-workload and per-fault-site series, and the four soak
    /// distributions as full bucket-by-bucket histograms.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter("soak.ticks", self.ticks);
        reg.counter("soak.cycles", self.cycles);
        reg.counter("soak.committed_instrs", self.committed_instrs);
        reg.counter("soak.committed_tasks", self.committed_tasks);
        reg.counter("soak.squashes", self.squashes);
        reg.counter("soak.wasted_instrs", self.wasted_instrs);
        reg.counter("soak.watchdog_violations", self.watchdog_violations);
        reg.counter("soak.faults_injected", self.faults_injected);
        reg.counter("soak.storms_started", self.storms_started);
        reg.counter("soak.storm_slices", self.storm_slices);
        reg.counter("soak.storm_slices_clean", self.storm_slices_clean);
        reg.counter("profile.intervals_dropped", self.intervals_dropped);
        reg.gauge("soak.ipc", self.ipc());
        reg.gauge(
            "soak.storm_active",
            if self.storm_active { 1.0 } else { 0.0 },
        );
        for (name, count) in MIX_NAMES.iter().zip(self.slices_per_mix.iter()) {
            reg.counter_with("soak.slices", &[("workload", name)], *count);
        }
        for (site, count) in FaultSite::EVERY.iter().zip(self.fault_counts.iter()) {
            reg.counter_with("soak.faults", &[("site", site.name())], *count);
        }
        // Fast-forward effectiveness as one labeled family, so a single
        // dashboard query graphs jumps against the cycles they saved.
        reg.counter_with("soak.fast_forward", &[("kind", "jumps")], self.ff_jumps);
        reg.counter_with(
            "soak.fast_forward",
            &[("kind", "skipped_cycles")],
            self.ff_skipped_cycles,
        );
        reg.distribution("soak.task_latency_cycles", &self.task_latency);
        reg.distribution("soak.squash_depth_tasks", &self.squash_depth);
        reg.distribution("soak.bus_wait_cycles_per_epoch", &self.bus_wait);
        reg.distribution("soak.mshr_occupancy", &self.mshr_occupancy);
        reg
    }

    /// The rolling `/profile` document body: the global interval series
    /// (windowed) plus summed per-PU attribution, as a synthetic
    /// [`ProfileReport`] whose conservation invariant still holds
    /// (per-slice conservation sums).
    pub fn profile_report(&self, cfg: &SoakConfig) -> ProfileReport {
        ProfileReport {
            num_pus: cfg.pus,
            cycles: self.cycles,
            epoch: cfg.epoch,
            per_pu: self.per_pu.clone(),
            samples: self.samples.clone(),
            wasted_addrs: Vec::new(),
            intervals_dropped: self.intervals_dropped,
        }
    }

    /// Whether every watchdog sweep so far came back clean.
    pub fn healthy(&self) -> bool {
        self.watchdog_violations == 0
    }
}

/// The `/healthz` document: watchdog status and fault-campaign recovery
/// counts.
pub fn healthz_json(state: &SoakState) -> Json {
    Json::obj()
        .set(
            "status",
            if state.healthy() { "ok" } else { "degraded" }.into(),
        )
        .set("ticks", state.ticks.into())
        .set("watchdog_violations", state.watchdog_violations.into())
        .set(
            "storms",
            Json::obj()
                .set("active", state.storm_active.into())
                .set("started", state.storms_started.into())
                .set("slices", state.storm_slices.into())
                .set("clean_slices", state.storm_slices_clean.into()),
        )
        .set("faults_injected", state.faults_injected.into())
        .set("intervals_dropped", state.intervals_dropped.into())
        .set("last_workload", state.last_mix.into())
}

/// The final `results/soak.json` snapshot (schema
/// [`report::SCHEMA_SOAK`]): run parameters, the full metrics registry,
/// the health summary, and the rolling profile window.
pub fn soak_doc(cfg: &SoakConfig, state: &SoakState) -> Json {
    Json::obj()
        .set("schema", report::SCHEMA_SOAK.into())
        .set("seed", cfg.seed.into())
        .set("ticks", state.ticks.into())
        .set("slice_tasks", cfg.slice_tasks.into())
        .set("slice_budget", cfg.slice_budget.into())
        .set("kb_per_cache", cfg.kb.into())
        .set("num_pus", cfg.pus.into())
        .set("epoch", cfg.epoch.into())
        .set("window", cfg.window.into())
        .set("storm", cfg.storm.spec().into())
        .set("metrics", report::metrics_json(&state.metrics()))
        .set("healthz", healthz_json(state))
        .set(
            "profile",
            report::profile_report_json(&state.profile_report(cfg)),
        )
}

/// Collects [`EpochSnapshot`]s out of the engine through shared
/// ownership (the engine owns the sink; we keep the other end).
#[derive(Debug)]
struct EpochCollector {
    out: Rc<RefCell<Vec<EpochSnapshot>>>,
}

impl EpochSink for EpochCollector {
    fn on_epoch(&mut self, snap: &EpochSnapshot) {
        self.out.borrow_mut().push(snap.clone());
    }
}

/// The workload of rotation slot `tick % ROTATION`, with variant slots
/// drawing `density` from the per-tick schedule stream. Returns the
/// source and its mix index into [`MIX_NAMES`].
fn slice_source(cfg: &SoakConfig, tick: u64, density: f64, seed: u64) -> (VecTaskSource, usize) {
    let n = cfg.slice_tasks;
    let slot = (tick % ROTATION as u64) as usize;
    let source = match slot {
        0 => kernels::streaming(n, 8),
        1 => kernels::readonly_sharing(n, 32),
        2 => kernels::producer_consumer(n, 6),
        3 => kernels::reduction(n, 3),
        4 => kernels::false_sharing(n, 2),
        5 => kernels::revisit(n, 16, 2),
        6 => kernels::pointer_chase(n, 6, 4096, seed),
        7 => kernels::streaming(n, 32),
        8 => kernels::pointer_chase(n, 12, 2048, seed),
        _ => kernels::conflict_density(n, density, seed),
    };
    (source, slot.min(9))
}

/// Runs one slice and folds its results into `state`.
fn run_slice(cfg: &SoakConfig, state: &mut SoakState, tick: u64, density: f64, seed: u64) {
    let stormy = cfg.storm.active(tick);
    let (source, mix) = slice_source(cfg, tick, density, seed);
    let faults = if stormy {
        Faults::new(&cfg.storm.config(), seed ^ STORM_SALT)
    } else {
        Faults::disabled()
    };
    let profiler = Profiler::new(cfg.pus, cfg.epoch);
    profiler.set_window(cfg.window);

    let mut svc_cfg = SvcConfig::final_design(cfg.pus);
    svc_cfg.geometry = SvcConfig::paper_geometry(cfg.kb);
    let mut system = SvcSystem::new(svc_cfg);
    system.set_faults(faults.clone());
    system.set_profiler(profiler.clone());
    let engine_cfg = EngineConfig {
        num_pus: cfg.pus,
        max_instructions: cfg.slice_budget,
        seed,
        engine_threads: cfg.engine_threads,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(engine_cfg, system);
    engine.set_faults(faults.clone());
    engine.set_watchdog(cfg.watchdog);
    engine.set_profiler(profiler.clone());
    let epochs: Rc<RefCell<Vec<EpochSnapshot>>> = Rc::new(RefCell::new(Vec::new()));
    engine.set_epoch_sink(Box::new(EpochCollector {
        out: Rc::clone(&epochs),
    }));

    let report: RunReport = engine.run(&source);
    let violations = engine.violations().len() as u64;
    let (par_threads, par_barriers, par_plan_nanos) = engine.par_stats();
    state.engine_threads = par_threads;
    state.engine_epoch_barriers += par_barriers;
    state.engine_plan_nanos += par_plan_nanos;

    // Fold the slice into cumulative state.
    state.ticks += 1;
    state.committed_instrs += report.committed_instrs;
    state.ff_jumps += report.ff_jumps;
    state.ff_skipped_cycles += report.ff_skipped_cycles;
    state.committed_tasks += report.committed_tasks;
    state.squashes += report.squashes;
    state.wasted_instrs += report.wasted_instrs;
    state.watchdog_violations += violations;
    state.slices_per_mix[mix] += 1;
    state.last_mix = MIX_NAMES[mix];
    state.task_latency.merge(&report.task_latency);
    state.squash_depth.merge(&report.squash_depths);
    state.storm_active = stormy;
    if stormy {
        state.storm_slices += 1;
        if violations == 0 {
            state.storm_slices_clean += 1;
        }
        let idx = cfg.storm.storm_index(tick);
        if state.last_storm != Some(idx) {
            state.last_storm = Some(idx);
            state.storms_started += 1;
        }
        state.faults_injected += faults.total_injected();
        for (slot, (_, count)) in state.fault_counts.iter_mut().zip(faults.counts()) {
            *slot += count;
        }
    }

    // Per-epoch histograms from the engine's snapshot stream.
    let mut prev_wait = 0u64;
    for snap in epochs.borrow().iter() {
        state.bus_wait.record(snap.mem.bus_wait_cycles - prev_wait);
        prev_wait = snap.mem.bus_wait_cycles;
        state.mshr_occupancy.record(snap.gauges.outstanding_misses);
    }

    // Profiler attribution and the re-based global interval series.
    if let Some(profile) = profiler.report() {
        for (acc, pu) in state.per_pu.iter_mut().zip(profile.per_pu.iter()) {
            for (a, b) in acc.iter_mut().zip(pu.iter()) {
                *a += b;
            }
        }
        state.intervals_dropped += profile.intervals_dropped;
        for s in &profile.samples {
            state.samples.push(Sample {
                cycle: state.base_cycles + s.cycle,
                committed_instrs: state.base_instrs + s.committed_instrs,
                squashes: state.base_squashes + s.squashes,
                bus_busy_cycles: state.base_busy + s.bus_busy_cycles,
                outstanding_misses: s.outstanding_misses,
                live_versions: s.live_versions,
            });
        }
        if cfg.sample_window > 0 && state.samples.len() > cfg.sample_window {
            let excess = state.samples.len() - cfg.sample_window;
            state.samples.drain(..excess);
            state.intervals_dropped += excess as u64;
        }
    }
    state.cycles += report.cycles;
    state.base_cycles += report.cycles;
    state.base_instrs += report.committed_instrs;
    state.base_squashes += report.squashes;
    state.base_busy += report.mem.bus_busy_cycles;
}

/// Runs the soak loop. `observer` is called after every tick with the
/// cumulative state (this is where `serve` republishes the telemetry
/// snapshot and prints its progress line); returning `false` stops the
/// loop. With `cfg.ticks == 0` the loop runs until the observer says
/// stop.
pub fn run_soak(cfg: &SoakConfig, observer: impl FnMut(&SoakState) -> bool) -> SoakState {
    run_soak_from(cfg, SoakState::new(cfg), observer)
}

/// Continues a soak from a restored [`SoakState`] — the resume path of
/// `svc-sim resume`. Ticks are slice boundaries, so the cumulative state
/// is the *only* thing a soak carries between ticks; the per-tick seed
/// and density streams draw exactly once per tick, so their positions
/// are a pure function of `state.ticks` and are rebuilt by fast-forward.
/// `run_soak_from` after `k` ticks is byte-identical to an uninterrupted
/// [`run_soak`] passing tick `k`.
pub fn run_soak_from(
    cfg: &SoakConfig,
    mut state: SoakState,
    mut observer: impl FnMut(&SoakState) -> bool,
) -> SoakState {
    let mut seeds = SplitMix64::new(cfg.seed ^ SEED_SALT);
    let mut densities = SplitMix64::new(cfg.seed ^ DENSITY_SALT);
    for _ in 0..state.ticks {
        seeds.next_u64();
        densities.next_u64();
    }
    loop {
        let tick = state.ticks;
        if cfg.ticks > 0 && tick >= cfg.ticks {
            break;
        }
        // One draw each per tick, unconditionally, so stream positions
        // are a function of the tick number alone.
        let seed = seeds.next_u64();
        let density = (densities.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        run_slice(cfg, &mut state, tick, density, seed);
        if !observer(&state) {
            break;
        }
    }
    state
}

impl svc_types::Checkpointable for SoakConfig {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.seed.save_state(w);
        self.ticks.save_state(w);
        self.slice_tasks.save_state(w);
        self.slice_budget.save_state(w);
        self.kb.save_state(w);
        self.pus.save_state(w);
        self.epoch.save_state(w);
        self.window.save_state(w);
        self.sample_window.save_state(w);
        self.watchdog.save_state(w);
        // The storm schedule round-trips through its canonical spec
        // string (`StormSchedule::spec` / `parse`).
        w.put_str(&self.storm.spec());
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.seed.restore_state(r)?;
        self.ticks.restore_state(r)?;
        self.slice_tasks.restore_state(r)?;
        self.slice_budget.restore_state(r)?;
        self.kb.restore_state(r)?;
        self.pus.restore_state(r)?;
        self.epoch.restore_state(r)?;
        self.window.restore_state(r)?;
        self.sample_window.restore_state(r)?;
        self.watchdog.restore_state(r)?;
        let spec = r.take_str()?;
        self.storm = StormSchedule::parse(&spec)
            .map_err(|e| svc_types::CkptError::corrupt(format!("bad storm spec {spec:?}: {e}")))?;
        if self.pus == 0 {
            return Err(svc_types::CkptError::corrupt("soak config with 0 PUs"));
        }
        Ok(())
    }
}

impl svc_types::Checkpointable for SoakState {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.ticks.save_state(w);
        self.cycles.save_state(w);
        self.committed_instrs.save_state(w);
        self.committed_tasks.save_state(w);
        self.squashes.save_state(w);
        self.wasted_instrs.save_state(w);
        self.watchdog_violations.save_state(w);
        self.faults_injected.save_state(w);
        self.fault_counts.save_state(w);
        self.storms_started.save_state(w);
        self.storm_slices.save_state(w);
        self.storm_slices_clean.save_state(w);
        self.storm_active.save_state(w);
        self.slices_per_mix.save_state(w);
        // `last_mix` points into MIX_NAMES; 255 encodes the pre-first-
        // tick empty label.
        let mix = MIX_NAMES.iter().position(|&m| m == self.last_mix);
        w.put_u8(mix.map_or(255, |i| i as u8));
        self.intervals_dropped.save_state(w);
        self.task_latency.save_state(w);
        self.squash_depth.save_state(w);
        self.bus_wait.save_state(w);
        self.mshr_occupancy.save_state(w);
        w.put_usize(self.per_pu.len());
        for pu in &self.per_pu {
            pu.save_state(w);
        }
        self.samples.save_state(w);
        self.base_cycles.save_state(w);
        self.base_instrs.save_state(w);
        self.base_squashes.save_state(w);
        self.base_busy.save_state(w);
        self.last_storm.save_state(w);
        self.ff_jumps.save_state(w);
        self.ff_skipped_cycles.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.ticks.restore_state(r)?;
        self.cycles.restore_state(r)?;
        self.committed_instrs.restore_state(r)?;
        self.committed_tasks.restore_state(r)?;
        self.squashes.restore_state(r)?;
        self.wasted_instrs.restore_state(r)?;
        self.watchdog_violations.restore_state(r)?;
        self.faults_injected.restore_state(r)?;
        self.fault_counts.restore_state(r)?;
        self.storms_started.restore_state(r)?;
        self.storm_slices.restore_state(r)?;
        self.storm_slices_clean.restore_state(r)?;
        self.storm_active.restore_state(r)?;
        self.slices_per_mix.restore_state(r)?;
        self.last_mix = match r.take_u8()? {
            255 => "",
            i => *MIX_NAMES
                .get(i as usize)
                .ok_or_else(|| svc_types::CkptError::corrupt(format!("unknown mix index {i}")))?,
        };
        self.intervals_dropped.restore_state(r)?;
        self.task_latency.restore_state(r)?;
        self.squash_depth.restore_state(r)?;
        self.bus_wait.restore_state(r)?;
        self.mshr_occupancy.restore_state(r)?;
        let n = r.take_usize()?;
        if n != self.per_pu.len() {
            return Err(svc_types::CkptError::corrupt(format!(
                "checkpoint has {n} PUs, soak configured for {}",
                self.per_pu.len()
            )));
        }
        for pu in &mut self.per_pu {
            pu.restore_state(r)?;
        }
        self.samples.restore_state(r)?;
        self.base_cycles.restore_state(r)?;
        self.base_instrs.restore_state(r)?;
        self.base_squashes.restore_state(r)?;
        self.base_busy.restore_state(r)?;
        self.last_storm.restore_state(r)?;
        self.ff_jumps.restore_state(r)?;
        self.ff_skipped_cycles.restore_state(r)
    }
}

/// The checkpoint payload of a soak: config + cumulative state in one
/// blob, so `svc-sim resume` needs nothing but the file. The kind tag
/// for [`svc_sim::checkpoint::encode`].
pub const SOAK_CKPT_KIND: &str = "svc-soak-state/v1";

/// Serializes a soak checkpoint payload (pair with
/// [`svc_sim::checkpoint::encode`] for the on-disk container).
pub fn soak_ckpt_payload(cfg: &SoakConfig, state: &SoakState) -> Vec<u8> {
    use svc_types::Checkpointable as _;
    let mut w = svc_types::CkptWriter::new();
    cfg.save_state(&mut w);
    state.save_state(&mut w);
    w.into_bytes()
}

/// Decodes a soak checkpoint payload back into config + state.
pub fn soak_ckpt_restore(payload: &[u8]) -> Result<(SoakConfig, SoakState), svc_types::CkptError> {
    use svc_types::Checkpointable as _;
    let mut r = svc_types::CkptReader::new(payload);
    let mut cfg = SoakConfig::default();
    cfg.restore_state(&mut r)?;
    let mut state = SoakState::new(&cfg);
    state.restore_state(&mut r)?;
    r.finish()?;
    Ok((cfg, state))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SoakConfig {
        SoakConfig {
            slice_tasks: 24,
            slice_budget: 1_500,
            storm: StormSchedule::parse("period=3,duration=1,rate=0.2,penalty=4").unwrap(),
            ..SoakConfig::default()
        }
    }

    #[test]
    fn bounded_soak_is_deterministic() {
        let cfg = SoakConfig { ticks: 6, ..tiny() };
        let a = soak_doc(&cfg, &run_soak(&cfg, |_| true)).render();
        let b = soak_doc(&cfg, &run_soak(&cfg, |_| true)).render();
        assert_eq!(a, b, "same seed, same bytes");
        let other = SoakConfig { seed: 7, ..cfg };
        let c = soak_doc(&other, &run_soak(&other, |_| true)).render();
        assert_ne!(a, c, "different seed, different soak");
    }

    #[test]
    fn storms_fire_and_observer_stops() {
        let cfg = SoakConfig { ticks: 6, ..tiny() };
        let state = run_soak(&cfg, |_| true);
        assert_eq!(state.ticks, 6);
        assert_eq!(state.storm_slices, 2, "ticks 2 and 5 are stormy");
        assert_eq!(state.storms_started, 2);
        assert!(state.healthy(), "storm recovery must stay watchdog-clean");

        let stopped = run_soak(&SoakConfig { ticks: 0, ..tiny() }, |s| s.ticks < 3);
        assert_eq!(stopped.ticks, 3, "observer stops an unbounded soak");
    }

    #[test]
    fn soak_doc_round_trips_and_conserves() {
        let cfg = SoakConfig { ticks: 5, ..tiny() };
        let state = run_soak(&cfg, |_| true);
        let doc = soak_doc(&cfg, &state);
        let text = doc.render();
        let parsed = report::parse(&text).expect("soak doc parses");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(report::SCHEMA_SOAK)
        );
        assert_eq!(parsed.render(), text, "parse→render is the identity");
        let profile = state.profile_report(&cfg);
        assert!(profile.conservation_ok(), "summed attribution conserves");
        assert!(state.committed_instrs > 0);
    }

    #[test]
    fn metrics_export_fast_forward_series() {
        let cfg = SoakConfig { ticks: 3, ..tiny() };
        let state = run_soak(&cfg, |_| true);
        let prom = state.metrics().render_prometheus();
        assert!(
            prom.contains("soak_fast_forward{kind=\"jumps\"}"),
            "missing jump series in:\n{prom}"
        );
        assert!(
            prom.contains("soak_fast_forward{kind=\"skipped_cycles\"}"),
            "missing skipped-cycles series in:\n{prom}"
        );
        // The slice engines idle between task dispatches, so a healthy
        // soak fast-forwards at least once.
        assert!(state.ff_jumps > 0, "no fast-forward jumps recorded");
        assert!(state.ff_skipped_cycles >= state.ff_jumps);
    }

    #[test]
    fn resumed_soak_is_byte_identical() {
        let cfg = SoakConfig { ticks: 6, ..tiny() };
        let want = soak_doc(&cfg, &run_soak(&cfg, |_| true)).render();

        // Stop after 3 ticks, round-trip through the checkpoint payload
        // (as a killed-and-restarted process would), and continue.
        let half = run_soak(&cfg, |s| s.ticks < 3);
        assert_eq!(half.ticks, 3);
        let payload = soak_ckpt_payload(&cfg, &half);
        drop(half);
        let (rcfg, rstate) = soak_ckpt_restore(&payload).expect("payload restores");
        assert_eq!(rcfg, cfg);
        let done = run_soak_from(&rcfg, rstate, |_| true);
        assert_eq!(
            soak_doc(&rcfg, &done).render(),
            want,
            "resumed soak diverged from uninterrupted soak"
        );
    }

    #[test]
    fn soak_doc_independent_of_engine_threads() {
        let cfg = SoakConfig { ticks: 4, ..tiny() };
        let want = soak_doc(&cfg, &run_soak(&cfg, |_| true)).render();
        let par = SoakConfig {
            engine_threads: 8,
            ..cfg
        };
        let state = run_soak(&par, |_| true);
        assert_eq!(state.engine_threads, 8, "slice engines saw the config");
        assert_eq!(
            soak_doc(&par, &state).render(),
            want,
            "soak artifacts must not depend on the planning thread count"
        );
    }

    #[test]
    fn soak_payload_rejects_truncation() {
        let cfg = SoakConfig { ticks: 2, ..tiny() };
        let state = run_soak(&cfg, |_| true);
        let payload = soak_ckpt_payload(&cfg, &state);
        for cut in [0, 1, payload.len() / 2, payload.len() - 1] {
            assert!(
                soak_ckpt_restore(&payload[..cut]).is_err(),
                "prefix of {cut} bytes restored without error"
            );
        }
    }

    #[test]
    fn rolling_sample_window_caps_series() {
        let cfg = SoakConfig {
            ticks: 8,
            sample_window: 4,
            ..tiny()
        };
        let state = run_soak(&cfg, |_| true);
        assert!(state.samples.len() <= 4);
        assert!(state.intervals_dropped > 0);
        let cycles: Vec<u64> = state.samples.iter().map(|s| s.cycle).collect();
        let mut sorted = cycles.clone();
        sorted.sort_unstable();
        assert_eq!(cycles, sorted, "re-based global series stays monotone");
    }
}
