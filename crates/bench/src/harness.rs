//! The parallel experiment harness: a deterministic fan-out runner.
//!
//! Experiment grids (benchmark × memory-system × configuration) are
//! embarrassingly parallel: every cell is an independent simulation.
//! [`run_grid`] executes a grid across scoped worker threads
//! ([`std::thread::scope`]) while keeping the output *bit-for-bit
//! independent of the thread count and of scheduling:
//!
//! * each job's seed is derived from the grid seed and the job's *index*
//!   (a [`SplitMix64`] stream), never from execution order;
//! * results land in a slot vector indexed by job, so collection order
//!   is the grid order regardless of completion order;
//! * simulated outputs carry no wall-clock data — timing lives in the
//!   separate [`GridOutcome`] self-measurement fields, which callers
//!   route to the perf snapshot (`BENCH_experiments.json`), never into
//!   the deterministic `results/*.json` artifacts.
//!
//! Thread count comes from `SVC_EXPERIMENT_THREADS` (or the machine's
//! available parallelism). `SVC_EXPERIMENT_THREADS=1` reproduces the
//! serial seed-repo behavior exactly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use svc_sim::rng::SplitMix64;

/// The results of one grid run plus the harness's self-measurement.
#[derive(Debug)]
pub struct GridOutcome<R> {
    /// Per-job results, in grid (submission) order.
    pub results: Vec<R>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock time for the whole grid.
    pub wall: Duration,
}

/// Worker-thread count: `SVC_EXPERIMENT_THREADS` if set and positive,
/// otherwise the machine's available parallelism, otherwise 1.
pub fn threads_from_env() -> usize {
    std::env::var("SVC_EXPERIMENT_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The per-job seed stream: job `i` gets the `i+1`-th output of a
/// [`SplitMix64`] seeded with `grid_seed`. A pure function of
/// `(grid_seed, i)`, so any thread count yields identical seeds.
pub fn job_seeds(grid_seed: u64, n: usize) -> Vec<u64> {
    let mut g = SplitMix64::new(grid_seed);
    (0..n).map(|_| g.next_u64()).collect()
}

/// Runs `run(job, derived_seed)` for every job across
/// [`threads_from_env`] workers. See [`run_grid_with_threads`].
pub fn run_grid<J, R, F>(jobs: &[J], grid_seed: u64, run: F) -> GridOutcome<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J, u64) -> R + Sync,
{
    run_grid_with_threads(jobs, grid_seed, threads_from_env(), run)
}

/// Runs the grid on an explicit number of worker threads.
///
/// Jobs are claimed from a shared counter (dynamic load balancing — grid
/// cells vary widely in simulation time), executed with their
/// index-derived seed, and stored into their own slot. The returned
/// `results` are byte-identical for any `threads >= 1`.
///
/// # Panics
///
/// A panicking job panics the harness (via scope join), so a failing
/// experiment still fails its binary.
pub fn run_grid_with_threads<J, R, F>(
    jobs: &[J],
    grid_seed: u64,
    threads: usize,
    run: F,
) -> GridOutcome<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J, u64) -> R + Sync,
{
    let started = Instant::now();
    let seeds = job_seeds(grid_seed, jobs.len());
    let workers = threads.clamp(1, jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let result = run(&jobs[i], seeds[i]);
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every job ran")
        })
        .collect();
    GridOutcome {
        results,
        threads: workers,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_a_pure_function_of_grid_seed_and_index() {
        assert_eq!(job_seeds(7, 5), job_seeds(7, 5));
        assert_eq!(job_seeds(7, 5)[..3], job_seeds(7, 3)[..]);
        assert_ne!(job_seeds(7, 2), job_seeds(8, 2));
    }

    #[test]
    fn grid_results_keep_submission_order_at_any_thread_count() {
        let jobs: Vec<u64> = (0..37).collect();
        let run = |j: &u64, seed: u64| (*j, seed, j * j);
        let serial = run_grid_with_threads(&jobs, 99, 1, run);
        for threads in [2, 3, 8, 64] {
            let parallel = run_grid_with_threads(&jobs, 99, threads, run);
            assert_eq!(serial.results, parallel.results);
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: GridOutcome<u64> = run_grid_with_threads(&[] as &[u64], 0, 4, |j, _| *j);
        assert!(out.results.is_empty());
    }
}
