//! The parallel experiment harness: a deterministic fan-out runner.
//!
//! Experiment grids (benchmark × memory-system × configuration) are
//! embarrassingly parallel: every cell is an independent simulation.
//! [`run_grid`] executes a grid across scoped worker threads
//! ([`std::thread::scope`]) while keeping the output *bit-for-bit
//! independent of the thread count and of scheduling:
//!
//! * each job's seed is derived from the grid seed and the job's *index*
//!   (a [`SplitMix64`] stream), never from execution order;
//! * results land in a slot vector indexed by job, so collection order
//!   is the grid order regardless of completion order;
//! * simulated outputs carry no wall-clock data — timing lives in the
//!   separate [`GridOutcome`] self-measurement fields, which callers
//!   route to the perf snapshot (`BENCH_experiments.json`), never into
//!   the deterministic `results/*.json` artifacts.
//!
//! Thread count comes from `SVC_EXPERIMENT_THREADS` (or the machine's
//! available parallelism). `SVC_EXPERIMENT_THREADS=1` reproduces the
//! serial seed-repo behavior exactly.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use svc_sim::rng::SplitMix64;

/// The results of one grid run plus the harness's self-measurement.
#[derive(Debug)]
pub struct GridOutcome<R> {
    /// Per-job results, in grid (submission) order.
    pub results: Vec<R>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock time for the whole grid.
    pub wall: Duration,
}

/// Worker-thread count: `SVC_EXPERIMENT_THREADS` if set and positive,
/// otherwise the machine's available parallelism, otherwise 1.
pub fn threads_from_env() -> usize {
    std::env::var("SVC_EXPERIMENT_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The per-job seed stream: job `i` gets the `i+1`-th output of a
/// [`SplitMix64`] seeded with `grid_seed`. A pure function of
/// `(grid_seed, i)`, so any thread count yields identical seeds.
pub fn job_seeds(grid_seed: u64, n: usize) -> Vec<u64> {
    let mut g = SplitMix64::new(grid_seed);
    (0..n).map(|_| g.next_u64()).collect()
}

/// Runs `run(job, derived_seed)` for every job across
/// [`threads_from_env`] workers. See [`run_grid_with_threads`].
pub fn run_grid<J, R, F>(jobs: &[J], grid_seed: u64, run: F) -> GridOutcome<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J, u64) -> R + Sync,
{
    run_grid_with_threads(jobs, grid_seed, threads_from_env(), run)
}

/// Runs the grid on an explicit number of worker threads.
///
/// Jobs are claimed from a shared counter (dynamic load balancing — grid
/// cells vary widely in simulation time), executed with their
/// index-derived seed, and stored into their own slot. The returned
/// `results` are byte-identical for any `threads >= 1`.
///
/// # Panics
///
/// A panicking job panics the harness (via scope join), so a failing
/// experiment still fails its binary.
pub fn run_grid_with_threads<J, R, F>(
    jobs: &[J],
    grid_seed: u64,
    threads: usize,
    run: F,
) -> GridOutcome<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J, u64) -> R + Sync,
{
    let started = Instant::now();
    let seeds = job_seeds(grid_seed, jobs.len());
    let workers = threads.clamp(1, jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let result = run(&jobs[i], seeds[i]);
                // Poison-tolerant: a panic elsewhere must not discard a
                // finished result.
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            });
        }
    });
    let results = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| panic!("job {i}: worker thread died before storing a result"))
        })
        .collect();
    GridOutcome {
        results,
        threads: workers,
        wall: started.elapsed(),
    }
}

// ---------------------------------------------------------------------
// Failsafe (graceful-degradation) runner
// ---------------------------------------------------------------------

/// Why one grid cell failed in [`run_grid_failsafe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked; the payload is the panic message.
    Panic(String),
    /// The job exceeded its deterministic cycle budget (reported by the
    /// job itself — the harness never uses wall-clock deadlines, which
    /// would break reproducibility).
    Timeout,
    /// The worker thread died before storing any result for this job
    /// (only possible if the panic escaped [`std::panic::catch_unwind`],
    /// e.g. an abort-on-drop; recorded rather than lost).
    WorkerDied,
}

impl JobError {
    /// Stable short tag (`panic` / `timeout` / `worker_died`) used in
    /// the `svc-experiments/v2` failure records.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Panic(_) => "panic",
            JobError::Timeout => "timeout",
            JobError::WorkerDied => "worker_died",
        }
    }

    /// Human-readable detail (the panic message; empty otherwise).
    pub fn detail(&self) -> &str {
        match self {
            JobError::Panic(msg) => msg,
            JobError::Timeout | JobError::WorkerDied => "",
        }
    }
}

/// A structured record of one failed grid cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// The cell's index in the grid (submission order).
    pub index: usize,
    /// The derived seed the cell ran under.
    pub seed: u64,
    /// The final error, after retries.
    pub error: JobError,
    /// Total attempts made (1 = no retry).
    pub attempts: u32,
}

/// The results of one failsafe grid run: every cell either succeeded
/// (`results[i]` is `Some`) or has a matching [`JobFailure`].
#[derive(Debug)]
pub struct FailsafeOutcome<R> {
    /// Per-job results in grid order; `None` where the cell failed.
    pub results: Vec<Option<R>>,
    /// Structured failure records, in grid order.
    pub failures: Vec<JobFailure>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock time for the whole grid.
    pub wall: Duration,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`run_grid_with_threads`] that completes the grid even when cells
/// fail.
///
/// Each cell runs under [`std::panic::catch_unwind`]; a panicking or
/// `Err`-returning cell is retried up to `retries` more times with the
/// *same* derived seed (so a flaky pass is still reproducible), then
/// recorded as a [`JobFailure`] instead of killing the harness. Worker
/// threads that die anyway (panics that escape `catch_unwind`) poison
/// nothing: finished results are drained poison-tolerantly and the dead
/// worker's unfinished cell is reported as [`JobError::WorkerDied`].
///
/// `results` and `failures` are byte-identical for any `threads >= 1`:
/// both are indexed by grid order and seeds derive from the grid seed
/// and cell index only.
pub fn run_grid_failsafe<J, R, F>(
    jobs: &[J],
    grid_seed: u64,
    threads: usize,
    retries: u32,
    run: F,
) -> FailsafeOutcome<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J, u64) -> Result<R, JobError> + Sync,
{
    let started = Instant::now();
    let seeds = job_seeds(grid_seed, jobs.len());
    let workers = threads.clamp(1, jobs.len().max(1));
    let next = AtomicUsize::new(0);
    type Slot<R> = Mutex<Option<Result<(R, u32), (JobError, u32)>>>;
    let slots: Vec<Slot<R>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let mut outcome = Err((JobError::WorkerDied, 0));
                for attempt in 1..=retries.saturating_add(1) {
                    let caught =
                        std::panic::catch_unwind(AssertUnwindSafe(|| run(&jobs[i], seeds[i])));
                    match caught {
                        Ok(Ok(result)) => {
                            outcome = Ok((result, attempt));
                            break;
                        }
                        Ok(Err(e)) => outcome = Err((e, attempt)),
                        Err(payload) => {
                            outcome = Err((JobError::Panic(panic_message(payload)), attempt))
                        }
                    }
                }
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
            });
        }
    });
    let mut results = Vec::with_capacity(jobs.len());
    let mut failures = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        let stored = slot
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .unwrap_or(Err((JobError::WorkerDied, 0)));
        match stored {
            Ok((result, _)) => results.push(Some(result)),
            Err((error, attempts)) => {
                results.push(None);
                failures.push(JobFailure {
                    index: i,
                    seed: seeds[i],
                    error,
                    attempts,
                });
            }
        }
    }
    FailsafeOutcome {
        results,
        failures,
        threads: workers,
        wall: started.elapsed(),
    }
}

// ---------------------------------------------------------------------
// Resumable grids: the cell journal
// ---------------------------------------------------------------------

/// Kind tag of one journaled grid cell.
pub const GRID_CELL_KIND: &str = "svc-grid-cell/v1";

/// A directory of finished grid-cell results, one checkpoint file per
/// cell, written atomically as each cell completes.
///
/// An interrupted grid leaves the journal holding every cell that
/// finished before the crash; rerunning the same grid against the same
/// journal loads those cells instead of re-simulating them. Every load
/// is validated — kind tag, content checksum, grid seed, cell index,
/// per-cell seed and the caller's cell label must all match — so a
/// stale or foreign journal degrades to a plain re-run, never to wrong
/// results.
pub struct GridJournal {
    dir: std::path::PathBuf,
    grid_seed: u64,
}

impl GridJournal {
    /// Opens (creating if needed) a journal directory for a grid with
    /// the given seed.
    pub fn open(
        dir: impl Into<std::path::PathBuf>,
        grid_seed: u64,
    ) -> std::io::Result<GridJournal> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(GridJournal { dir, grid_seed })
    }

    /// The journal's directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn cell_path(&self, index: usize) -> std::path::PathBuf {
        self.dir.join(format!("cell-{index:04}.svc"))
    }

    /// Loads cell `index` if a journaled result exists and survives
    /// every validation; `None` (= re-run the cell) otherwise.
    pub fn load<R: svc_types::Checkpointable + Default>(
        &self,
        index: usize,
        seed: u64,
        label: &str,
    ) -> Option<R> {
        let bytes = std::fs::read(self.cell_path(index)).ok()?;
        let (kind, payload) = svc_sim::checkpoint::decode(&bytes).ok()?;
        if kind != GRID_CELL_KIND {
            return None;
        }
        let mut r = svc_types::CkptReader::new(&payload);
        let matches = (|| {
            Some(
                r.take_u64().ok()? == self.grid_seed
                    && r.take_usize().ok()? == index
                    && r.take_u64().ok()? == seed
                    && r.take_str().ok()? == label,
            )
        })()
        .unwrap_or(false);
        if !matches {
            return None;
        }
        let mut out = R::default();
        out.restore_state(&mut r).ok()?;
        r.finish().ok()?;
        Some(out)
    }

    /// Journals a finished cell (atomic tmp + fsync + rename).
    pub fn store<R: svc_types::Checkpointable>(
        &self,
        index: usize,
        seed: u64,
        label: &str,
        result: &R,
    ) -> std::io::Result<()> {
        let mut w = svc_types::CkptWriter::new();
        w.put_u64(self.grid_seed);
        w.put_usize(index);
        w.put_u64(seed);
        w.put_str(label);
        result.save_state(&mut w);
        let blob = svc_sim::checkpoint::encode(GRID_CELL_KIND, &w.into_bytes());
        svc_sim::checkpoint::write_atomic(&self.cell_path(index), &blob)
    }
}

/// [`run_grid_with_threads`] with a cell journal: cells already in the
/// journal are loaded instead of run, and every freshly-run cell is
/// journaled the moment it finishes. `label` names a cell for
/// validation (e.g. `"gcc/SVC 8KB"`), guarding against a journal left
/// behind by a *different* grid that happens to share seed and shape.
///
/// Results are byte-identical to an un-journaled run at any thread
/// count — a journal hit returns exactly the bytes the cell persisted,
/// and the persistence round-trip is itself checkpoint-validated.
pub fn run_grid_resumable<J, R, F, L>(
    jobs: &[J],
    grid_seed: u64,
    threads: usize,
    journal: &GridJournal,
    label: L,
    run: F,
) -> GridOutcome<R>
where
    J: Sync,
    R: Send + svc_types::Checkpointable + Default,
    F: Fn(&J, u64) -> R + Sync,
    L: Fn(&J) -> String + Sync,
{
    let started = Instant::now();
    let seeds = job_seeds(grid_seed, jobs.len());
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let mut pending: Vec<usize> = Vec::new();
    for i in 0..jobs.len() {
        match journal.load::<R>(i, seeds[i], &label(&jobs[i])) {
            Some(r) => *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r),
            None => pending.push(i),
        }
    }
    let recovered = jobs.len() - pending.len();
    if recovered > 0 {
        eprintln!(
            "grid journal {}: {recovered}/{} cell(s) recovered, {} to run",
            journal.dir().display(),
            jobs.len(),
            pending.len()
        );
    }
    let workers = threads.clamp(1, pending.len().max(1));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= pending.len() {
                    break;
                }
                let i = pending[k];
                let result = run(&jobs[i], seeds[i]);
                // Journal first, then publish: a cell is only "done"
                // once it would survive a crash. A full disk degrades
                // resumability, not the run itself.
                if let Err(e) = journal.store(i, seeds[i], &label(&jobs[i]), &result) {
                    eprintln!("grid journal: cell {i} not saved (continuing): {e}");
                }
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            });
        }
    });
    let results = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| panic!("job {i}: worker thread died before storing a result"))
        })
        .collect();
    GridOutcome {
        results,
        threads: workers,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_a_pure_function_of_grid_seed_and_index() {
        assert_eq!(job_seeds(7, 5), job_seeds(7, 5));
        assert_eq!(job_seeds(7, 5)[..3], job_seeds(7, 3)[..]);
        assert_ne!(job_seeds(7, 2), job_seeds(8, 2));
    }

    #[test]
    fn grid_results_keep_submission_order_at_any_thread_count() {
        let jobs: Vec<u64> = (0..37).collect();
        let run = |j: &u64, seed: u64| (*j, seed, j * j);
        let serial = run_grid_with_threads(&jobs, 99, 1, run);
        for threads in [2, 3, 8, 64] {
            let parallel = run_grid_with_threads(&jobs, 99, threads, run);
            assert_eq!(serial.results, parallel.results);
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: GridOutcome<u64> = run_grid_with_threads(&[] as &[u64], 0, 4, |j, _| *j);
        assert!(out.results.is_empty());
    }

    /// A grid mixing healthy, panicking, and timed-out cells completes,
    /// with every failure recorded as a structured entry.
    #[test]
    fn failsafe_grid_survives_panics_and_timeouts() {
        let jobs: Vec<u64> = (0..12).collect();
        let out = run_grid_failsafe(&jobs, 5, 4, 0, |j, seed| match j % 4 {
            1 => panic!("cell {j} exploded"),
            2 => Err(JobError::Timeout),
            _ => Ok((*j, seed)),
        });
        assert_eq!(out.results.len(), 12);
        assert_eq!(out.failures.len(), 6);
        for f in &out.failures {
            assert!(out.results[f.index].is_none());
            match f.index % 4 {
                1 => {
                    assert_eq!(f.error.kind(), "panic");
                    assert_eq!(f.error.detail(), format!("cell {} exploded", f.index));
                }
                2 => assert_eq!(f.error, JobError::Timeout),
                _ => unreachable!("healthy cell {} reported as failed", f.index),
            }
            assert_eq!(f.attempts, 1);
        }
        for (i, r) in out.results.iter().enumerate() {
            if i % 4 != 1 && i % 4 != 2 {
                assert!(r.is_some(), "healthy cell {i} lost its result");
            }
        }
    }

    /// Failure records (index, seed, error, attempts) are identical at
    /// any worker count, like the results themselves.
    #[test]
    fn failsafe_failures_are_thread_count_invariant() {
        let jobs: Vec<u64> = (0..23).collect();
        let run = |j: &u64, seed: u64| {
            if j.is_multiple_of(3) {
                panic!("boom {j}");
            }
            if j.is_multiple_of(5) {
                return Err(JobError::Timeout);
            }
            Ok((*j, seed))
        };
        let serial = run_grid_failsafe(&jobs, 77, 1, 1, run);
        for threads in [2, 8] {
            let parallel = run_grid_failsafe(&jobs, 77, threads, 1, run);
            assert_eq!(serial.results, parallel.results);
            assert_eq!(serial.failures, parallel.failures);
        }
    }

    /// A bounded same-seed retry re-runs the cell; a cell that succeeds
    /// on a later attempt produces a result and no failure record.
    #[test]
    fn failsafe_retry_recovers_flaky_cells() {
        use std::sync::atomic::AtomicU32;
        let attempts = AtomicU32::new(0);
        let jobs = [0u64];
        let out = run_grid_failsafe(&jobs, 1, 1, 2, |_, seed| {
            if attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("flaky");
            }
            Ok(seed)
        });
        assert_eq!(attempts.load(Ordering::Relaxed), 3);
        assert!(out.failures.is_empty());
        assert_eq!(out.results[0], Some(job_seeds(1, 1)[0]));

        // And a permanently failing cell records the attempt count.
        let out = run_grid_failsafe(&jobs, 1, 1, 2, |_, _| -> Result<u64, JobError> {
            panic!("always")
        });
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].attempts, 3);
    }

    fn journal_scratch(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("svc-grid-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// An interrupted grid (journal holding a strict subset of cells)
    /// restarts from the completed cells: only the missing ones run,
    /// and the results match an uninterrupted run exactly.
    #[test]
    fn journaled_grid_resumes_from_completed_cells() {
        let dir = journal_scratch("resume");
        let jobs: Vec<u64> = (0..9).collect();
        let label = |j: &u64| format!("job-{j}");
        let ran = AtomicUsize::new(0);
        let run = |j: &u64, seed: u64| {
            ran.fetch_add(1, Ordering::Relaxed);
            j.wrapping_mul(31) ^ seed
        };

        let journal = GridJournal::open(&dir, 42).expect("open journal");
        let full = run_grid_resumable(&jobs, 42, 4, &journal, label, run);
        assert_eq!(ran.swap(0, Ordering::Relaxed), 9);
        let plain = run_grid_with_threads(&jobs, 42, 1, run);
        assert_eq!(full.results, plain.results, "journal changed the results");
        ran.store(0, Ordering::Relaxed);

        // Simulate the interruption: drop three cells from the journal.
        for i in [1usize, 4, 7] {
            std::fs::remove_file(dir.join(format!("cell-{i:04}.svc"))).expect("drop cell");
        }
        let resumed = run_grid_resumable(&jobs, 42, 4, &journal, label, run);
        assert_eq!(ran.load(Ordering::Relaxed), 3, "only missing cells re-run");
        assert_eq!(resumed.results, full.results);

        // A fully-journaled grid re-runs nothing at all.
        ran.store(0, Ordering::Relaxed);
        let warm = run_grid_resumable(&jobs, 42, 4, &journal, label, run);
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        assert_eq!(warm.results, full.results);
    }

    /// Torn cell files, foreign grid seeds and mismatched labels are
    /// all rejected at load — the cell silently re-runs instead of
    /// poisoning the grid with stale results.
    #[test]
    fn journal_rejects_torn_and_foreign_cells() {
        let dir = journal_scratch("reject");
        let jobs: Vec<u64> = (0..4).collect();
        let run = |j: &u64, seed: u64| *j ^ seed;
        let journal = GridJournal::open(&dir, 7).expect("open journal");
        let label = |j: &u64| format!("job-{j}");
        let full = run_grid_resumable(&jobs, 7, 2, &journal, label, run);

        // Tear cell 0 mid-file: checksum mismatch.
        let cell0 = dir.join("cell-0000.svc");
        let bytes = std::fs::read(&cell0).expect("cell 0");
        std::fs::write(&cell0, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(journal
            .load::<u64>(0, job_seeds(7, 4)[0], "job-0")
            .is_none());

        // A journal opened under a different grid seed rejects cell 1.
        let foreign = GridJournal::open(&dir, 8).expect("open foreign");
        assert!(foreign
            .load::<u64>(1, job_seeds(7, 4)[1], "job-1")
            .is_none());

        // A mismatched label rejects cell 2.
        assert!(journal
            .load::<u64>(2, job_seeds(7, 4)[2], "job-other")
            .is_none());

        // And the grid still heals: the torn cell re-runs to the same
        // result.
        let healed = run_grid_resumable(&jobs, 7, 2, &journal, label, run);
        assert_eq!(healed.results, full.results);
    }
}
