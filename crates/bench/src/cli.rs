//! Typed CLI errors and stable exit codes, shared by `svc-sim` and the
//! experiment binaries.
//!
//! Every binary maps its failure modes onto three codes so scripts and
//! CI can tell them apart without parsing stderr:
//!
//! | code | meaning |
//! |---|---|
//! | [`EXIT_USAGE`] (2) | bad flags / arguments |
//! | [`EXIT_IO`] (3) | filesystem or baseline I/O failure |
//! | [`EXIT_INVARIANT`] (4) | an invariant violation or silent-corruption finding |

use std::fmt;
use std::process::ExitCode;

/// Exit code for usage errors (bad flags, unknown subcommands).
pub const EXIT_USAGE: u8 = 2;
/// Exit code for I/O errors (results dir, baselines, trace sinks).
pub const EXIT_IO: u8 = 3;
/// Exit code for invariant violations / silent corruption findings.
pub const EXIT_INVARIANT: u8 = 4;

/// A typed CLI failure carrying its message and exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The command line was malformed; the payload is the complaint
    /// (callers usually print usage alongside).
    Usage(String),
    /// An I/O operation failed; the payload names the path/operation.
    Io(String),
    /// An invariant violation (or an unrecovered fault) was detected.
    Invariant(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => EXIT_USAGE,
            CliError::Io(_) => EXIT_IO,
            CliError::Invariant(_) => EXIT_INVARIANT,
        }
    }

    /// Wraps an [`std::io::Error`] with the path/operation context.
    pub fn io(context: impl fmt::Display, err: std::io::Error) -> CliError {
        CliError::Io(format!("{context}: {err}"))
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(msg) => write!(f, "io error: {msg}"),
            CliError::Invariant(msg) => write!(f, "invariant violation: {msg}"),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(err: std::io::Error) -> CliError {
        CliError::Io(err.to_string())
    }
}

/// Unwraps an I/O result or prints the typed error and exits with
/// [`EXIT_IO`]. For experiment binaries whose `main` ends in
/// `process::exit` rather than returning a `Result`.
pub fn check_io<T>(context: impl fmt::Display, result: std::io::Result<T>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{}", CliError::io(context, e));
            std::process::exit(i32::from(EXIT_IO));
        }
    }
}

/// Rejects any command-line arguments with [`EXIT_USAGE`]: the
/// experiment binaries are configured purely by environment
/// (`SVC_EXPERIMENT_BUDGET`, `SVC_THREADS`, …), so a stray flag is a
/// usage error, not something to silently ignore.
pub fn reject_args(name: &str) {
    if let Some(arg) = std::env::args().nth(1) {
        eprintln!(
            "usage error: {name} takes no arguments (got {arg:?}); \
             configure it via SVC_EXPERIMENT_BUDGET / SVC_THREADS"
        );
        std::process::exit(i32::from(EXIT_USAGE));
    }
}

/// Like [`reject_args`], but accepts the one flag the experiment
/// binaries share: `--profile`, which enables the cycle-accounting
/// profiler (equivalent to `SVC_PROFILE=1`) and makes the binary write
/// `results/<name>.profile.json` next to its experiment document.
/// Anything else exits with [`EXIT_USAGE`].
pub fn parse_profile_flag(name: &str) {
    for arg in std::env::args().skip(1) {
        if arg == "--profile" {
            std::env::set_var("SVC_PROFILE", "1");
        } else {
            eprintln!(
                "usage error: {name} takes only --profile (got {arg:?}); \
                 configure it via SVC_EXPERIMENT_BUDGET / SVC_THREADS / SVC_PROFILE"
            );
            std::process::exit(i32::from(EXIT_USAGE));
        }
    }
}

/// Standard `main` tail: prints the error to stderr and converts it to
/// its exit code; `Ok` becomes success.
pub fn exit_report(result: Result<(), CliError>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Io("x".into()).exit_code(), 3);
        assert_eq!(CliError::Invariant("x".into()).exit_code(), 4);
    }

    #[test]
    fn io_wrapper_keeps_context() {
        let e = CliError::io(
            "results/table2.json",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let s = format!("{e}");
        assert!(s.contains("results/table2.json") && s.contains("gone"));
    }
}
