//! The model-check pin: `results/check.json` (`svc-check/v1`).
//!
//! Exhaustive exploration (crate `svc-check`) is deterministic: for the
//! pinned per-design bounds, the number of distinct states and
//! transitions is a function of the protocol implementation alone. The
//! counts are therefore pinned **exactly** — a drift of even one state
//! means the protocol's reachable behaviour changed, which is either a
//! bug or an intentional change that must be re-baselined with
//! `regress --update`.
//!
//! The document layout:
//!
//! ```json
//! {
//!   "schema": "svc-check/v1",
//!   "designs": [
//!     {"design": "svc-base", "states": ..., "transitions": ...,
//!      "max_depth": ..., "violations": 0},
//!     ...
//!   ]
//! }
//! ```
//!
//! `violations` is always 0 in a written document: a violation or a
//! truncated run refuses to produce a document at all.

use svc_check::{explore_design, Limits, ALL_DESIGNS};

use crate::report::Json;

/// Schema identifier for the check document.
pub const SCHEMA_CHECK: &str = "svc-check/v1";

/// The metrics pinned exactly per design.
const PINNED_METRICS: [&str; 4] = ["states", "transitions", "max_depth", "violations"];

/// Explores every design at the pinned bounds and builds the check
/// document. `Err` carries a rendered counterexample or truncation
/// report — there is no document to write in that case.
pub fn fresh_check_doc() -> Result<Json, String> {
    let mut designs = Vec::new();
    for design in ALL_DESIGNS {
        let out = explore_design(design, &Limits::default());
        if let Some(cx) = &out.violation {
            return Err(format!(
                "{}: property violation ({})\ncounterexample:\n{}",
                design.name(),
                cx.failure,
                cx.script.render()
            ));
        }
        if out.truncated {
            return Err(format!(
                "{}: exploration truncated at {} states",
                design.name(),
                out.states
            ));
        }
        designs.push(
            Json::obj()
                .set("design", design.name().into())
                .set("states", out.states.into())
                .set("transitions", out.transitions.into())
                .set("max_depth", out.max_depth.into())
                .set("violations", 0u64.into()),
        );
    }
    Ok(Json::obj()
        .set("schema", SCHEMA_CHECK.into())
        .set("designs", Json::Arr(designs)))
}

/// Diffs a fresh check document against the pinned baseline. Counts are
/// compared exactly; every mismatch yields one human-readable
/// complaint. Empty result = gate clean.
pub fn diff_check(baseline: &Json, fresh: &Json) -> Vec<String> {
    let mut complaints = Vec::new();
    if baseline.get("schema").and_then(Json::as_str) != Some(SCHEMA_CHECK) {
        complaints.push(format!("check baseline schema is not {SCHEMA_CHECK:?}"));
    }
    let empty = [];
    let base = baseline
        .get("designs")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let fresh_designs = fresh
        .get("designs")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let name_of = |j: &Json| {
        j.get("design")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    for f in fresh_designs {
        let name = name_of(f);
        let Some(b) = base.iter().find(|b| name_of(b) == name) else {
            complaints.push(format!(
                "{name}: missing from the check baseline (run `regress --update`?)"
            ));
            continue;
        };
        for metric in PINNED_METRICS {
            let get = |j: &Json| j.get(metric).and_then(Json::as_f64);
            let (bv, fv) = (get(b), get(f));
            if bv != fv {
                complaints.push(format!(
                    "{name}.{metric}: baseline {}, now {} (explored counts are pinned exactly)",
                    bv.map_or("absent".to_string(), |v| format!("{v}")),
                    fv.map_or("absent".to_string(), |v| format!("{v}")),
                ));
            }
        }
    }
    for b in base {
        let name = name_of(b);
        if !fresh_designs.iter().any(|f| name_of(f) == name) {
            complaints.push(format!(
                "{name}: in the check baseline but no longer explored"
            ));
        }
    }
    complaints
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(states: u64) -> Json {
        Json::obj().set("schema", SCHEMA_CHECK.into()).set(
            "designs",
            Json::Arr(vec![Json::obj()
                .set("design", "svc-base".into())
                .set("states", states.into())
                .set("transitions", 10u64.into())
                .set("max_depth", 3u64.into())
                .set("violations", 0u64.into())]),
        )
    }

    #[test]
    fn identical_docs_are_clean() {
        assert!(diff_check(&doc(5), &doc(5)).is_empty());
    }

    #[test]
    fn one_state_of_drift_is_flagged() {
        let complaints = diff_check(&doc(5), &doc(6));
        assert_eq!(complaints.len(), 1);
        assert!(complaints[0].contains("svc-base.states"), "{complaints:?}");
    }

    #[test]
    fn missing_design_and_schema_are_flagged() {
        let empty = Json::obj()
            .set("schema", "other/v0".into())
            .set("designs", Json::Arr(vec![]));
        let complaints = diff_check(&empty, &doc(5));
        assert!(complaints.iter().any(|c| c.contains("schema")));
        assert!(complaints.iter().any(|c| c.contains("missing")));
        // And the reverse direction: baseline entries that vanished.
        let complaints = diff_check(&doc(5), &empty.set("schema", SCHEMA_CHECK.into()));
        assert!(complaints.iter().any(|c| c.contains("no longer explored")));
    }
}
