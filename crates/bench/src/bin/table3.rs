//! **Table 3** of the paper: snooping-bus utilization of the SVC at
//! 4×8KB and 4×16KB, across the seven SPEC95 benchmark models.
//!
//! Shape targets: mgrid is by far the highest ("mostly due to misses to
//! the next level memory", §4.4); 4×16KB is at or below 4×8KB everywhere.
//! Absolute levels run below the paper's because this bus model pipelines
//! consecutive transactions (see EXPERIMENTS.md).
//!
//! Runs the 14-cell grid through the parallel harness and writes
//! `results/table3.json` alongside the text table.

use svc_bench::{cli, cross, instruction_budget, publish_paper_grid, run_paper_grid, MemoryKind};
use svc_sim::table::{fmt_ratio, Table};
use svc_workloads::Spec95;

const PAPER: [(f64, f64); 7] = [
    (0.348, 0.341), // compress
    (0.219, 0.203), // gcc
    (0.360, 0.354), // vortex
    (0.313, 0.291), // perl
    (0.241, 0.226), // ijpeg
    (0.747, 0.632), // mgrid
    (0.276, 0.255), // apsi
];

const MEMORIES: [MemoryKind; 2] = [
    MemoryKind::Svc { kb_per_cache: 8 },
    MemoryKind::Svc { kb_per_cache: 16 },
];

fn main() {
    cli::parse_profile_flag("table3");
    println!("Table 3: Snooping Bus Utilization for SVC\n");
    let budget = instruction_budget();
    let jobs = cross(&Spec95::ALL, &MEMORIES);
    let outcome = run_paper_grid(&jobs, budget);

    let mut t = Table::new(
        ["Benchmark", "4x8KB", "(paper)", "4x16KB", "(paper)"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let mut rows = Vec::new();
    for (i, b) in Spec95::ALL.into_iter().enumerate() {
        let k8 = &outcome.results[i * MEMORIES.len()];
        let k16 = &outcome.results[i * MEMORIES.len() + 1];
        t.row(vec![
            b.name().into(),
            fmt_ratio(k8.bus_utilization),
            fmt_ratio(PAPER[i].0),
            fmt_ratio(k16.bus_utilization),
            fmt_ratio(PAPER[i].1),
        ]);
        rows.push((b, k8.bus_utilization, k16.bus_utilization));
    }
    println!("{}", t.render());
    println!("Shape checks:");
    let mut ok = true;
    let mgrid = rows
        .iter()
        .find(|(b, _, _)| *b == Spec95::Mgrid)
        .expect("mgrid ran");
    for &(b, u8kb, _) in &rows {
        if b != Spec95::Mgrid {
            let pass = mgrid.1 > u8kb;
            ok &= pass;
            println!(
                "  {} mgrid ({:.3}) > {} ({:.3})",
                if pass { "PASS" } else { "FAIL" },
                mgrid.1,
                b.name(),
                u8kb
            );
        }
    }
    for &(b, u8kb, u16kb) in &rows {
        let pass = u16kb <= u8kb + 0.01;
        ok &= pass;
        println!(
            "  {} {:8}: 4x16KB ({:.3}) <= 4x8KB ({:.3})",
            if pass { "PASS" } else { "FAIL" },
            b.name(),
            u16kb,
            u8kb
        );
    }
    cli::check_io(
        "results/table3.json",
        publish_paper_grid("table3", budget, &outcome),
    );
    std::process::exit(i32::from(!ok));
}
