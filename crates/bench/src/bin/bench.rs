//! Benchmark trajectory driver: regenerates the `BENCH_experiments.json`
//! perf snapshot and reports how simulator throughput moved.
//!
//! Two modes:
//!
//! * `bench` — rotates the snapshot (current `experiments` become
//!   `previous`), reruns every experiment binary so each merges a fresh
//!   self-measurement back in, then prints the per-experiment and
//!   aggregate `sim_cycles_per_sec` speedups the snapshot now carries.
//!   The experiment documents under `results/` are regenerated too and
//!   must stay byte-identical — wall-clock data never leaks into them.
//! * `bench --cell` — a seconds-scale CI probe: times one grid cell
//!   in-process (best of three) and prints its throughput next to the
//!   committed snapshot's aggregate. Informational only; timing on
//!   shared CI runners is too noisy to gate on, so this always exits 0.

use std::process::Command;
use std::time::Instant;

use svc_bench::report::{self, Json};
use svc_bench::{cli, run_spec95_with, MemoryKind, PAPER_SEED};
use svc_workloads::Spec95;

/// Every binary that contributes an entry to the snapshot, in sweep
/// order (cheap sanity grids last so an early failure surfaces fast).
const EXPERIMENTS: [&str; 10] = [
    "motivation",
    "table2",
    "table3",
    "fig19",
    "fig20",
    "scaling",
    "scaling-xl",
    "ablations",
    "calibrate",
    "calibrate64",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        [] => full_sweep(),
        ["--cell"] => cell_probe(),
        _ => {
            eprintln!(
                "usage error: bench takes no arguments or --cell (got {args:?}); \
                 configure it via SVC_EXPERIMENT_BUDGET / SVC_BENCH_SNAPSHOT"
            );
            std::process::exit(i32::from(cli::EXIT_USAGE));
        }
    }
}

fn full_sweep() {
    let snapshot = cli::check_io("rotate snapshot", report::rotate_snapshot());
    println!(
        "bench: rotated {} (experiments -> previous)",
        snapshot.display()
    );

    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .unwrap_or_default();
    for name in EXPERIMENTS {
        let bin = exe_dir.join(name);
        print!("bench: running {name} ... ");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        let started = Instant::now();
        let status = Command::new(&bin)
            .stdout(std::process::Stdio::null())
            .status();
        match status {
            Ok(s) if s.code() == Some(0) || s.code() == Some(1) => {
                // Exit 1 is a shape-check miss, not a harness failure;
                // the snapshot entry was still recorded.
                println!(
                    "done in {:.1}s{}",
                    started.elapsed().as_secs_f64(),
                    if s.code() == Some(1) {
                        " (shape checks failed)"
                    } else {
                        ""
                    }
                );
            }
            Ok(s) => {
                eprintln!("bench: {name} failed with {s}");
                std::process::exit(i32::from(cli::EXIT_IO));
            }
            Err(e) => {
                eprintln!("bench: cannot run {}: {e}", bin.display());
                std::process::exit(i32::from(cli::EXIT_IO));
            }
        }
    }

    let doc = read_snapshot();
    print_trajectory(&doc);
}

/// Prints the per-experiment throughput table and the aggregate speedup
/// the snapshot's `speedup` section carries.
fn print_trajectory(doc: &Json) {
    let Some(experiments) = doc.get("experiments").and_then(Json::as_obj) else {
        println!("bench: snapshot has no experiments section");
        return;
    };
    let speedup = doc.get("speedup");
    let per = speedup.and_then(|s| s.get("per_experiment"));
    println!(
        "\n{:<12} {:>16} {:>9}",
        "experiment", "sim_cycles/s", "speedup"
    );
    for (name, entry) in experiments {
        let cps = entry
            .get("sim_cycles_per_sec")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let ratio = per.and_then(|p| p.get(name)).and_then(Json::as_f64);
        match ratio {
            Some(r) => println!("{name:<12} {cps:>16.0} {r:>8.2}x"),
            None => println!("{name:<12} {cps:>16.0} {:>9}", "-"),
        }
    }
    match speedup
        .and_then(|s| s.get("aggregate"))
        .and_then(Json::as_f64)
    {
        Some(agg) => println!("\naggregate speedup vs previous sweep: {agg:.2}x"),
        None => println!("\nno previous sweep to compare against"),
    }
}

/// One small in-process cell, timed best-of-three: ijpeg on the final
/// SVC design at a fraction of the default budget.
fn cell_probe() {
    const BUDGET: u64 = 100_000;
    let memory = MemoryKind::Svc { kb_per_cache: 8 };
    let mut best_cps = 0.0f64;
    let mut cycles = 0u64;
    for _ in 0..3 {
        let started = Instant::now();
        let result = run_spec95_with(Spec95::Ijpeg, memory, BUDGET, PAPER_SEED);
        let wall = started.elapsed().as_secs_f64();
        cycles = result.report.cycles;
        if wall > 0.0 {
            best_cps = best_cps.max(cycles as f64 / wall);
        }
    }
    println!(
        "bench --cell: ijpeg/SVC-4x8KB {cycles} cycles, best of 3: {best_cps:.0} sim cycles/s"
    );
    let doc = read_snapshot();
    if let Some((cycles_sum, wall_sum)) = snapshot_totals(&doc) {
        let snapshot_cps = cycles_sum / wall_sum;
        println!(
            "bench --cell: committed snapshot aggregate {snapshot_cps:.0} sim cycles/s \
             (this cell: {:+.1}%, informational only)",
            (best_cps / snapshot_cps - 1.0) * 100.0
        );
    }
}

/// Total `(sim_cycles, wall_s)` over the snapshot's experiments.
fn snapshot_totals(doc: &Json) -> Option<(f64, f64)> {
    let experiments = doc.get("experiments")?.as_obj()?;
    let mut cycles = 0.0;
    let mut wall = 0.0;
    for (_, e) in experiments {
        cycles += e.get("sim_cycles")?.as_f64()?;
        wall += e.get("wall_s")?.as_f64()?;
    }
    (wall > 0.0).then_some((cycles, wall))
}

fn read_snapshot() -> Json {
    let path = report::snapshot_path();
    std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| report::parse(&text).ok())
        .unwrap_or_else(Json::obj)
}
