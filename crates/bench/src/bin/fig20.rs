//! **Figure 20** of the paper: SPEC95 IPCs for the ARB (hit latency 1–4
//! cycles) and the SVC, at 64KB total data storage. Same shape targets as
//! Figure 19, plus the paper's headline: "for a total storage of 64KB,
//! the SVC outperforms the ARB [with 2-cycle hits] by as much as 8% for
//! mgrid".
//!
//! Writes `results/fig20.json` via the shared figure runner.

#[path = "fig19.rs"]
mod fig19_impl;

fn main() {
    svc_bench::cli::parse_profile_flag("fig20");
    let run = fig19_impl::run_figure(
        "fig20",
        64,
        16,
        "Figure 20: SPEC95 IPCs for ARB and SVC — 64KB total data storage",
    );
    // The paper's mgrid headline comparison, from the same grid
    // (non-fatal; the fatal checks live in run_figure).
    let find = |memory: &str| {
        run.outcome
            .results
            .iter()
            .find(|r| r.workload == "mgrid" && r.memory == memory)
            .unwrap_or_else(|| panic!("mgrid/{memory} cell ran"))
            .ipc
    };
    let arb2 = find("ARB-2c-64KB");
    let svc = find("SVC-4x16KB");
    println!(
        "\nmgrid headline: SVC-4x16KB {:.2} vs ARB-2c-64KB {:.2} ({:+.1}%; paper: up to +8%)",
        svc,
        arb2,
        (svc / arb2 - 1.0) * 100.0
    );
    std::process::exit(i32::from(!run.ok));
}
