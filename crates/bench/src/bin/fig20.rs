//! **Figure 20** of the paper: SPEC95 IPCs for the ARB (hit latency 1–4
//! cycles) and the SVC, at 64KB total data storage. Same shape targets as
//! Figure 19, plus the paper's headline: "for a total storage of 64KB,
//! the SVC outperforms the ARB [with 2-cycle hits] by as much as 8% for
//! mgrid".

use svc_bench::{run_spec95, MemoryKind};
use svc_workloads::Spec95;

#[path = "fig19.rs"]
mod fig19_impl;

fn main() {
    // Print the paper's mgrid headline comparison first (non-fatal).
    let arb2 = run_spec95(
        Spec95::Mgrid,
        MemoryKind::Arb {
            hit_cycles: 2,
            cache_kb: 64,
        },
    )
    .ipc;
    let svc = run_spec95(Spec95::Mgrid, MemoryKind::Svc { kb_per_cache: 16 }).ipc;
    println!(
        "mgrid headline: SVC-4x16KB {:.2} vs ARB-2c-64KB {:.2} ({:+.1}%; paper: up to +8%)\n",
        svc,
        arb2,
        (svc / arb2 - 1.0) * 100.0
    );
    fig19_impl::run_figure(64, 16, "Figure 20: SPEC95 IPCs for ARB and SVC — 64KB total data storage");
}
