//! Calibration sweep: prints, per benchmark, every metric the paper
//! reports (miss ratios, IPCs at all ARB latencies, bus utilization),
//! side by side with the paper's values, so the workload profiles in
//! `svc-workloads` can be tuned. Not itself a paper artifact — see
//! `table2`, `table3`, `fig19`, `fig20` for those.
//!
//! The 35-cell grid runs through the parallel harness and writes
//! `results/calibrate.json`.

use svc_bench::{cli, cross, instruction_budget, publish_paper_grid, run_paper_grid, MemoryKind};
use svc_sim::table::{fmt_ipc, fmt_ratio, Table};
use svc_workloads::Spec95;

/// The paper's measurements, for side-by-side display.
/// (benchmark, arb_miss, svc_miss, bus_util_8k, bus_util_16k)
const PAPER: [(&str, f64, f64, f64, f64); 7] = [
    ("compress", 0.031, 0.075, 0.348, 0.341),
    ("gcc", 0.021, 0.036, 0.219, 0.203),
    ("vortex", 0.019, 0.025, 0.360, 0.354),
    ("perl", 0.026, 0.024, 0.313, 0.291),
    ("ijpeg", 0.015, 0.027, 0.241, 0.226),
    ("mgrid", 0.081, 0.093, 0.747, 0.632),
    ("apsi", 0.023, 0.034, 0.276, 0.255),
];

fn main() {
    cli::parse_profile_flag("calibrate");
    let budget = instruction_budget();
    let memories: Vec<MemoryKind> = (1..=4)
        .map(|h| MemoryKind::Arb {
            hit_cycles: h,
            cache_kb: 32,
        })
        .chain(std::iter::once(MemoryKind::Svc { kb_per_cache: 8 }))
        .collect();
    let jobs = cross(&Spec95::ALL, &memories);
    let outcome = run_paper_grid(&jobs, budget);

    let mut t = Table::new(
        [
            "bench", "ARBmiss", "(paper)", "SVCmiss", "(paper)", "bus8K", "(paper)", "ARB1",
            "ARB2", "ARB3", "ARB4", "SVC", "sq", "mp",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    for (i, b) in Spec95::ALL.into_iter().enumerate() {
        let row = &outcome.results[i * memories.len()..(i + 1) * memories.len()];
        let (arb1, arb2, arb3, arb4, svc) = (&row[0], &row[1], &row[2], &row[3], &row[4]);
        let p = PAPER[i];
        t.row(vec![
            b.name().into(),
            fmt_ratio(arb1.miss_ratio),
            fmt_ratio(p.1),
            fmt_ratio(svc.miss_ratio),
            fmt_ratio(p.2),
            fmt_ratio(svc.bus_utilization),
            fmt_ratio(p.3),
            fmt_ipc(arb1.ipc),
            fmt_ipc(arb2.ipc),
            fmt_ipc(arb3.ipc),
            fmt_ipc(arb4.ipc),
            fmt_ipc(svc.ipc),
            format!("{}", svc.report.squashes),
            format!("{}", svc.report.mispredictions),
        ]);
    }
    println!("{}", t.render());
    cli::check_io(
        "results/calibrate.json",
        publish_paper_grid("calibrate", budget, &outcome),
    );
}
