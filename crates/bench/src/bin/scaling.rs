//! Scaling study (beyond the paper): how the SVC and the contention-free
//! ARB scale with processing-unit count on the SPEC95 models. The paper
//! flags the shared bus as the SVC's eventual bottleneck ("the shared
//! buffer is a potential bandwidth bottleneck" — of the ARB; the SVC
//! trades that for snooping-bus bandwidth); this quantifies where the
//! crossover sits.

use svc_bench::{run_source, MemoryKind};
use svc_multiscalar::EngineConfig;
use svc_sim::table::{fmt_ipc, fmt_ratio, Table};
use svc_workloads::Spec95;

fn main() {
    let budget: u64 = std::env::var("SVC_EXPERIMENT_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300_000);
    for bench in [Spec95::Gcc, Spec95::Ijpeg, Spec95::Mgrid] {
        println!("scaling on {bench}:\n");
        let mut t = Table::new(
            ["PUs", "SVC IPC", "bus util", "ARB-2c IPC", "SVC/ARB"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        for pus in [2usize, 4, 8] {
            let wl = bench.workload(42);
            let cfg = EngineConfig {
                num_pus: pus,
                predictor: wl.profile().predictor(42),
                max_instructions: budget,
                seed: 42,
                garbage_addr_space: wl.profile().hot_set.max(64),
                load_dep_frac: wl.profile().load_dep_frac,
                ..EngineConfig::default()
            };
            let svc = run_source(&wl, MemoryKind::Svc { kb_per_cache: 8 }, cfg);
            let arb = run_source(
                &wl,
                MemoryKind::Arb {
                    hit_cycles: 2,
                    cache_kb: 32,
                },
                cfg,
            );
            t.row(vec![
                format!("{pus}"),
                fmt_ipc(svc.ipc),
                fmt_ratio(svc.bus_utilization),
                fmt_ipc(arb.ipc),
                format!("{:.2}", svc.ipc / arb.ipc),
            ]);
        }
        println!("{}", t.render());
    }
    println!("Expected shape: both scale with PUs; the SVC's advantage narrows as");
    println!("its snooping bus saturates — the bandwidth ceiling the paper trades");
    println!("against the ARB's latency ceiling.");
}
