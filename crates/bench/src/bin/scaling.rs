//! Scaling study (beyond the paper): how the SVC and the contention-free
//! ARB scale with processing-unit count on the SPEC95 models. The paper
//! flags the shared bus as the SVC's eventual bottleneck ("the shared
//! buffer is a potential bandwidth bottleneck" — of the ARB; the SVC
//! trades that for snooping-bus bandwidth); this quantifies where the
//! crossover sits.
//!
//! The 18-cell grid (3 benchmarks × 3 PU counts × 2 systems) runs
//! through the parallel harness and writes `results/scaling.json`; the
//! memory labels encode the PU count (e.g. `SVC-8x8KB`).

use svc_bench::{cli, harness, publish_paper_grid, run_source, MemoryKind, PAPER_SEED};
use svc_multiscalar::EngineConfig;
use svc_sim::table::{fmt_ipc, fmt_ratio, Table};
use svc_workloads::Spec95;

const BENCHES: [Spec95; 3] = [Spec95::Gcc, Spec95::Ijpeg, Spec95::Mgrid];
const PUS: [usize; 3] = [2, 4, 8];
const MEMORIES: [MemoryKind; 2] = [
    MemoryKind::Svc { kb_per_cache: 8 },
    MemoryKind::Arb {
        hit_cycles: 2,
        cache_kb: 32,
    },
];

fn main() {
    cli::parse_profile_flag("scaling");
    let budget: u64 = std::env::var("SVC_EXPERIMENT_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300_000);
    let mut jobs = Vec::new();
    for bench in BENCHES {
        for pus in PUS {
            for memory in MEMORIES {
                jobs.push((bench, pus, memory));
            }
        }
    }
    let outcome = harness::run_grid(&jobs, PAPER_SEED, |&(bench, pus, memory), _derived| {
        let wl = bench.workload(PAPER_SEED);
        let cfg = EngineConfig {
            num_pus: pus,
            predictor: wl.profile().predictor(PAPER_SEED),
            max_instructions: budget,
            seed: PAPER_SEED,
            garbage_addr_space: wl.profile().hot_set.max(64),
            load_dep_frac: wl.profile().load_dep_frac,
            ..EngineConfig::default()
        };
        run_source(&wl, memory, cfg)
    });

    for (bi, bench) in BENCHES.into_iter().enumerate() {
        println!("scaling on {bench}:\n");
        let mut t = Table::new(
            ["PUs", "SVC IPC", "bus util", "ARB-2c IPC", "SVC/ARB"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        for (pi, pus) in PUS.into_iter().enumerate() {
            let base = (bi * PUS.len() + pi) * MEMORIES.len();
            let svc = &outcome.results[base];
            let arb = &outcome.results[base + 1];
            t.row(vec![
                format!("{pus}"),
                fmt_ipc(svc.ipc),
                fmt_ratio(svc.bus_utilization),
                fmt_ipc(arb.ipc),
                format!("{:.2}", svc.ipc / arb.ipc),
            ]);
        }
        println!("{}", t.render());
    }
    println!("Expected shape: both scale with PUs; the SVC's advantage narrows as");
    println!("its snooping bus saturates — the bandwidth ceiling the paper trades");
    println!("against the ARB's latency ceiling.");
    cli::check_io(
        "results/scaling.json",
        publish_paper_grid("scaling", budget, &outcome),
    );
}
