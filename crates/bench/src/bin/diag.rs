//! Per-event diagnostics used while calibrating the workload models.
//! Runs its 6 cells through the parallel harness; purely a console
//! tool, so it writes no results artifact.
use svc_bench::{cli, cross, instruction_budget, run_paper_grid, MemoryKind};
use svc_workloads::Spec95;

const BENCHES: [Spec95; 3] = [Spec95::Gcc, Spec95::Compress, Spec95::Mgrid];
const MEMORIES: [MemoryKind; 2] = [
    MemoryKind::Svc { kb_per_cache: 8 },
    MemoryKind::Arb {
        hit_cycles: 1,
        cache_kb: 32,
    },
];

fn main() {
    cli::reject_args("diag");
    let jobs = cross(&BENCHES, &MEMORIES);
    let outcome = run_paper_grid(&jobs, instruction_budget());
    for (i, b) in BENCHES.into_iter().enumerate() {
        let svc = &outcome.results[i * MEMORIES.len()];
        let arb = &outcome.results[i * MEMORIES.len() + 1];
        let t = svc.report.committed_tasks as f64;
        let m = &svc.report.mem;
        println!(
            "== {b:?}: SVC tasks={t} cycles={} cyc/task={:.1}",
            svc.report.cycles,
            svc.report.cycles as f64 / t
        );
        println!("  SVC per task: loads {:.2} stores {:.2} fills {:.3} transfers {:.3} txns {:.3} wbacks {:.3} purged {:.3} squashinv {:.3} snarfs {:.3}",
            m.loads as f64/t, m.stores as f64/t, m.next_level_fills as f64/t,
            m.cache_transfers as f64/t, m.bus_transactions as f64/t,
            m.writebacks as f64/t, m.purged_versions as f64/t,
            m.squash_invalidations as f64/t, m.snarfs as f64/t);
        println!(
            "  SVC busy/txn {:.2} violations/task {:.3} squashes {} repl_stalls {}",
            m.bus_busy_cycles as f64 / m.bus_transactions.max(1) as f64,
            m.violations as f64 / t,
            svc.report.squashes,
            m.replacement_stalls
        );
        let am = &arb.report.mem;
        let at = arb.report.committed_tasks as f64;
        println!(
            "  ARB per task: loads {:.2} stores {:.2} fills {:.3} miss {:.4} viol/task {:.3}",
            am.loads as f64 / at,
            am.stores as f64 / at,
            am.next_level_fills as f64 / at,
            arb.miss_ratio,
            am.violations as f64 / at
        );
    }
}
