//! Ablation studies for the SVC's design choices (DESIGN.md §3): each
//! isolates one mechanism of the §3 progression on a kernel built to
//! stress it.
//!
//! * `commit`   — base flush-on-commit vs EC lazy commit (C bit);
//! * `squash`   — invalidate-all vs A-bit architectural retention;
//! * `snarf`    — HR snarfing on/off under read-only sharing;
//! * `linesize` — RL sub-block granularity vs line-granularity L/S bits
//!   under false sharing;
//! * `retain`   — §3.8.1's optional retention of flushed passive-dirty
//!   lines, on a slot-revisiting kernel;
//! * `protocol` — write-invalidate vs hybrid update–invalidate for
//!   producer→consumer communication.
//!
//! Run all: `cargo run --release -p svc-bench --bin ablations`

use svc::{SvcConfig, SvcSystem};
use svc_mem::CacheGeometry;
use svc_multiscalar::{Engine, EngineConfig, PredictorModel, TaskSource};
use svc_types::VersionedMemory;
use svc_workloads::kernels;

struct Outcome {
    ipc: f64,
    miss: f64,
    bus: f64,
    violations: u64,
    writebacks: u64,
    retained: u64,
    snarfs: u64,
}

fn run(cfg: SvcConfig, src: &dyn TaskSource, mispredict: f64) -> Outcome {
    let engine_cfg = EngineConfig {
        num_pus: cfg.num_pus,
        predictor: PredictorModel {
            accuracy: 1.0 - mispredict,
            detect_cycles: 12,
            seed: 5,
        },
        seed: 5,
        garbage_addr_space: 256,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(engine_cfg, SvcSystem::new(cfg));
    let report = engine.run(src);
    let stats = engine.memory().stats();
    Outcome {
        ipc: report.ipc(),
        miss: stats.miss_ratio(),
        bus: report.bus_utilization(),
        violations: stats.violations,
        writebacks: stats.writebacks,
        retained: stats.squash_retained,
        snarfs: stats.snarfs,
    }
}

fn show(label: &str, o: &Outcome) {
    println!(
        "  {label:26} IPC {:5.2}  miss {:5.3}  bus {:5.3}  viol {:5}  wb {:6}  retained {:5}  snarfs {:5}",
        o.ipc, o.miss, o.bus, o.violations, o.writebacks, o.retained, o.snarfs
    );
}

fn main() {
    let mut failures = 0;

    println!("ablation: commit policy (streaming stores — the base design's writeback burst)");
    let src = kernels::streaming(800, 8);
    let eager = run(SvcConfig::base(4), &src, 0.0);
    let lazy = run(SvcConfig::ec(4), &src, 0.0);
    show("flush-on-commit (base)", &eager);
    show("lazy C-bit commit (EC)", &lazy);
    if lazy.ipc <= eager.ipc {
        println!("  UNEXPECTED: lazy commit should win");
        failures += 1;
    }

    println!("\nablation: squash policy (read-only sharing + mispredictions)");
    let src = kernels::readonly_sharing(1500, 48);
    let mut no_a = SvcConfig::ec(4);
    no_a.arch_bit = false;
    let without = run(no_a, &src, 0.06);
    let with = run(SvcConfig::ecs(4), &src, 0.06);
    show("invalidate-all (EC)", &without);
    show("A-bit retention (ECS)", &with);
    if with.miss >= without.miss {
        println!("  UNEXPECTED: the A bit should cut post-squash misses");
        failures += 1;
    }

    println!("\nablation: snarfing (reference spreading on read-only data)");
    let src = kernels::readonly_sharing(1500, 48);
    let off = run(SvcConfig::ecs(4), &src, 0.0);
    let on = run(SvcConfig::hr(4), &src, 0.0);
    show("no snarfing (ECS)", &off);
    show("snarfing (HR)", &on);
    if on.snarfs == 0 {
        println!("  UNEXPECTED: HR should snarf");
        failures += 1;
    }

    println!("\nablation: versioning-block size (false sharing)");
    let src = kernels::false_sharing(2000, 4);
    let mut line_grain = SvcConfig::final_design(4);
    line_grain.geometry = CacheGeometry::new(128, 4, 4, 4); // L/S per line
    let mut word_grain = SvcConfig::final_design(4);
    word_grain.geometry = CacheGeometry::new(128, 4, 4, 1); // L/S per word
    let coarse = run(line_grain, &src, 0.0);
    let fine = run(word_grain, &src, 0.0);
    show("line-grain L/S bits", &coarse);
    show("word-grain L/S (RL)", &fine);
    if fine.violations >= coarse.violations {
        println!("  UNEXPECTED: sub-blocking should remove false-sharing squashes");
        failures += 1;
    }

    println!("\nablation: retain flushed passive-dirty lines (§3.8.1 optimization)");
    // Each PU revisits its own slot every epoch while neighbours' reads
    // flush the committed version in between: retention turns the
    // owner's next-epoch revisit into a local hit.
    let src = kernels::revisit(2000, 8, 4);
    let off = run(SvcConfig::ecs(4), &src, 0.0);
    let mut retain = SvcConfig::ecs(4);
    retain.retain_flushed = true;
    let on = run(retain, &src, 0.0);
    show("purge on flush (final)", &off);
    show("retain flushed (option)", &on);
    if on.miss >= off.miss {
        println!("  UNEXPECTED: retention should turn revisits into local hits");
        failures += 1;
    }

    println!("\nablation: shared L2 behind the bus (extension beyond the paper)");
    // The fringe-like pattern (working set larger than the L1s but smaller
    // than an L2) is where a second level pays off. Both configurations
    // see the same 30-cycle DRAM; the question is whether a 6-cycle L2 in
    // front of it earns its keep.
    let src = kernels::pointer_chase(4000, 6, 6000, 5);
    let mut flat_cfg = SvcConfig::final_design(4);
    flat_cfg.timing.memory_cycles = 30;
    let flat = run(flat_cfg, &src, 0.0);
    let mut l2cfg = SvcConfig::final_design(4);
    l2cfg.l2 = Some(svc_mem::L2Config::typical());
    let l2 = run(l2cfg, &src, 0.0);
    show("no L2 (30-cycle DRAM)", &flat);
    show("256KB L2 + 30-cycle DRAM", &l2);
    if l2.ipc <= flat.ipc {
        println!("  UNEXPECTED: the L2 should absorb capacity misses here");
        failures += 1;
    }

    println!("\nablation: update protocol (producer -> consumer chains)");
    let src = kernels::producer_consumer(1200, 10);
    let mut invalidate = SvcConfig::final_design(4);
    invalidate.hybrid_update = false;
    let inv = run(invalidate, &src, 0.0);
    let upd = run(SvcConfig::final_design(4), &src, 0.0);
    show("write-invalidate", &inv);
    show("hybrid update (final)", &upd);

    println!();
    if failures == 0 {
        println!("all ablation expectations hold");
    } else {
        println!("{failures} ablation expectation(s) violated");
        std::process::exit(1);
    }
}
