//! Ablation studies for the SVC's design choices (DESIGN.md §3): each
//! isolates one mechanism of the §3 progression on a kernel built to
//! stress it.
//!
//! * `commit`   — base flush-on-commit vs EC lazy commit (C bit);
//! * `squash`   — invalidate-all vs A-bit architectural retention;
//! * `snarf`    — HR snarfing on/off under read-only sharing;
//! * `linesize` — RL sub-block granularity vs line-granularity L/S bits
//!   under false sharing;
//! * `retain`   — §3.8.1's optional retention of flushed passive-dirty
//!   lines, on a slot-revisiting kernel;
//! * `l2`       — shared L2 behind the bus (extension beyond the paper);
//! * `protocol` — write-invalidate vs hybrid update–invalidate for
//!   producer→consumer communication.
//!
//! The 14 arms run through the parallel harness and land in
//! `results/ablations.json` (workload = study, memory = arm label).
//!
//! Run all: `cargo run --release -p svc-bench --bin ablations`

use svc::{SvcConfig, SvcSystem};
use svc_bench::{cli, harness, publish_paper_grid, ExperimentResult, PAPER_SEED};
use svc_mem::CacheGeometry;
use svc_multiscalar::{Engine, EngineConfig, PredictorModel, TaskSource};
use svc_sim::profile::Profiler;
use svc_workloads::kernels;

/// One ablation arm: a kernel plus an SVC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    CommitEager,
    CommitLazy,
    SquashNoA,
    SquashA,
    SnarfOff,
    SnarfOn,
    LineGrain,
    WordGrain,
    RetainOff,
    RetainOn,
    L2Flat,
    L2On,
    ProtoInv,
    ProtoUpd,
}

/// (study, first arm + label, second arm + label), in report order.
const STUDIES: [(&str, Arm, &str, Arm, &str); 7] = [
    (
        "commit",
        Arm::CommitEager,
        "flush-on-commit (base)",
        Arm::CommitLazy,
        "lazy C-bit commit (EC)",
    ),
    (
        "squash",
        Arm::SquashNoA,
        "invalidate-all (EC)",
        Arm::SquashA,
        "A-bit retention (ECS)",
    ),
    (
        "snarf",
        Arm::SnarfOff,
        "no snarfing (ECS)",
        Arm::SnarfOn,
        "snarfing (HR)",
    ),
    (
        "linesize",
        Arm::LineGrain,
        "line-grain L/S bits",
        Arm::WordGrain,
        "word-grain L/S (RL)",
    ),
    (
        "retain",
        Arm::RetainOff,
        "purge on flush (final)",
        Arm::RetainOn,
        "retain flushed (option)",
    ),
    (
        "l2",
        Arm::L2Flat,
        "no L2 (30-cycle DRAM)",
        Arm::L2On,
        "256KB L2 + 30-cycle DRAM",
    ),
    (
        "protocol",
        Arm::ProtoInv,
        "write-invalidate",
        Arm::ProtoUpd,
        "hybrid update (final)",
    ),
];

fn run(
    study: &str,
    label: &str,
    cfg: SvcConfig,
    src: &dyn TaskSource,
    mispredict: f64,
) -> ExperimentResult {
    let engine_cfg = EngineConfig {
        num_pus: cfg.num_pus,
        predictor: PredictorModel {
            accuracy: 1.0 - mispredict,
            detect_cycles: 12,
            seed: 5,
        },
        seed: 5,
        garbage_addr_space: 256,
        ..EngineConfig::default()
    };
    let profiler = Profiler::from_env(cfg.num_pus);
    let mut system = SvcSystem::new(cfg);
    system.set_profiler(profiler.clone());
    let mut engine = Engine::new(engine_cfg, system);
    engine.set_profiler(profiler.clone());
    let report = engine.run(src);
    ExperimentResult {
        workload: study.to_string(),
        memory: label.to_string(),
        ipc: report.ipc(),
        miss_ratio: report.mem.miss_ratio(),
        bus_utilization: report.bus_utilization(),
        profile: profiler.report(),
        report,
    }
}

fn run_arm(study: &str, label: &str, arm: Arm) -> ExperimentResult {
    match arm {
        Arm::CommitEager => run(
            study,
            label,
            SvcConfig::base(4),
            &kernels::streaming(800, 8),
            0.0,
        ),
        Arm::CommitLazy => run(
            study,
            label,
            SvcConfig::ec(4),
            &kernels::streaming(800, 8),
            0.0,
        ),
        Arm::SquashNoA => {
            let mut no_a = SvcConfig::ec(4);
            no_a.arch_bit = false;
            run(
                study,
                label,
                no_a,
                &kernels::readonly_sharing(1500, 48),
                0.06,
            )
        }
        Arm::SquashA => run(
            study,
            label,
            SvcConfig::ecs(4),
            &kernels::readonly_sharing(1500, 48),
            0.06,
        ),
        Arm::SnarfOff => run(
            study,
            label,
            SvcConfig::ecs(4),
            &kernels::readonly_sharing(1500, 48),
            0.0,
        ),
        Arm::SnarfOn => run(
            study,
            label,
            SvcConfig::hr(4),
            &kernels::readonly_sharing(1500, 48),
            0.0,
        ),
        Arm::LineGrain => {
            let mut line_grain = SvcConfig::final_design(4);
            line_grain.geometry = CacheGeometry::new(128, 4, 4, 4); // L/S per line
            run(
                study,
                label,
                line_grain,
                &kernels::false_sharing(2000, 4),
                0.0,
            )
        }
        Arm::WordGrain => {
            let mut word_grain = SvcConfig::final_design(4);
            word_grain.geometry = CacheGeometry::new(128, 4, 4, 1); // L/S per word
            run(
                study,
                label,
                word_grain,
                &kernels::false_sharing(2000, 4),
                0.0,
            )
        }
        // Each PU revisits its own slot every epoch while neighbours'
        // reads flush the committed version in between: retention turns
        // the owner's next-epoch revisit into a local hit.
        Arm::RetainOff => run(
            study,
            label,
            SvcConfig::ecs(4),
            &kernels::revisit(2000, 8, 4),
            0.0,
        ),
        Arm::RetainOn => {
            let mut retain = SvcConfig::ecs(4);
            retain.retain_flushed = true;
            run(study, label, retain, &kernels::revisit(2000, 8, 4), 0.0)
        }
        // The fringe-like pattern (working set larger than the L1s but
        // smaller than an L2) is where a second level pays off. Both
        // arms see the same 30-cycle DRAM; the question is whether a
        // 6-cycle L2 in front of it earns its keep.
        Arm::L2Flat => {
            let mut flat_cfg = SvcConfig::final_design(4);
            flat_cfg.timing.memory_cycles = 30;
            run(
                study,
                label,
                flat_cfg,
                &kernels::pointer_chase(4000, 6, 6000, 5),
                0.0,
            )
        }
        Arm::L2On => {
            let mut l2cfg = SvcConfig::final_design(4);
            l2cfg.l2 = Some(svc_mem::L2Config::typical());
            run(
                study,
                label,
                l2cfg,
                &kernels::pointer_chase(4000, 6, 6000, 5),
                0.0,
            )
        }
        Arm::ProtoInv => {
            let mut invalidate = SvcConfig::final_design(4);
            invalidate.hybrid_update = false;
            run(
                study,
                label,
                invalidate,
                &kernels::producer_consumer(1200, 10),
                0.0,
            )
        }
        Arm::ProtoUpd => run(
            study,
            label,
            SvcConfig::final_design(4),
            &kernels::producer_consumer(1200, 10),
            0.0,
        ),
    }
}

fn show(label: &str, r: &ExperimentResult) {
    let m = &r.report.mem;
    println!(
        "  {label:26} IPC {:5.2}  miss {:5.3}  bus {:5.3}  viol {:5}  wb {:6}  retained {:5}  snarfs {:5}",
        r.ipc, r.miss_ratio, r.bus_utilization, m.violations, m.writebacks, m.squash_retained, m.snarfs
    );
}

fn main() {
    cli::parse_profile_flag("ablations");
    let mut jobs = Vec::new();
    for &(study, arm_a, label_a, arm_b, label_b) in &STUDIES {
        jobs.push((study, arm_a, label_a));
        jobs.push((study, arm_b, label_b));
    }
    let outcome = harness::run_grid(&jobs, PAPER_SEED, |&(study, arm, label), _derived| {
        run_arm(study, label, arm)
    });

    let mut failures = 0;
    let mut fail = |cond: bool, msg: &str| {
        if cond {
            println!("  UNEXPECTED: {msg}");
            failures += 1;
        }
    };

    let cell = |i: usize, side: usize| &outcome.results[i * 2 + side];

    println!("ablation: commit policy (streaming stores — the base design's writeback burst)");
    let (eager, lazy) = (cell(0, 0), cell(0, 1));
    show(STUDIES[0].2, eager);
    show(STUDIES[0].4, lazy);
    fail(lazy.ipc <= eager.ipc, "lazy commit should win");

    println!("\nablation: squash policy (read-only sharing + mispredictions)");
    let (without, with) = (cell(1, 0), cell(1, 1));
    show(STUDIES[1].2, without);
    show(STUDIES[1].4, with);
    fail(
        with.miss_ratio >= without.miss_ratio,
        "the A bit should cut post-squash misses",
    );

    println!("\nablation: snarfing (reference spreading on read-only data)");
    let (off, on) = (cell(2, 0), cell(2, 1));
    show(STUDIES[2].2, off);
    show(STUDIES[2].4, on);
    fail(on.report.mem.snarfs == 0, "HR should snarf");

    println!("\nablation: versioning-block size (false sharing)");
    let (coarse, fine) = (cell(3, 0), cell(3, 1));
    show(STUDIES[3].2, coarse);
    show(STUDIES[3].4, fine);
    fail(
        fine.report.mem.violations >= coarse.report.mem.violations,
        "sub-blocking should remove false-sharing squashes",
    );

    println!("\nablation: retain flushed passive-dirty lines (§3.8.1 optimization)");
    let (off, on) = (cell(4, 0), cell(4, 1));
    show(STUDIES[4].2, off);
    show(STUDIES[4].4, on);
    fail(
        on.miss_ratio >= off.miss_ratio,
        "retention should turn revisits into local hits",
    );

    println!("\nablation: shared L2 behind the bus (extension beyond the paper)");
    let (flat, l2) = (cell(5, 0), cell(5, 1));
    show(STUDIES[5].2, flat);
    show(STUDIES[5].4, l2);
    fail(
        l2.ipc <= flat.ipc,
        "the L2 should absorb capacity misses here",
    );

    println!("\nablation: update protocol (producer -> consumer chains)");
    let (inv, upd) = (cell(6, 0), cell(6, 1));
    show(STUDIES[6].2, inv);
    show(STUDIES[6].4, upd);

    cli::check_io(
        "results/ablations.json",
        publish_paper_grid("ablations", 0, &outcome),
    );

    println!();
    if failures == 0 {
        println!("all ablation expectations hold");
    } else {
        println!("{failures} ablation expectation(s) violated");
        std::process::exit(1);
    }
}
