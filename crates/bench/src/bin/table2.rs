//! **Table 2** of the paper: miss ratios for the ARB (32KB shared,
//! direct-mapped) and the SVC (4×8KB private, 4-way), across the seven
//! SPEC95 benchmark models.
//!
//! "For the SVC, an access is counted as a miss if data is supplied by
//! the next level memory; data transfers between the L1 caches are not
//! counted as misses." (§4.4)
//!
//! Runs the 14-cell grid through the parallel harness and writes
//! `results/table2.json` alongside the text table.

use svc_bench::{cli, cross, instruction_budget, publish_paper_grid, run_paper_grid, MemoryKind};
use svc_sim::table::{fmt_ratio, Table};
use svc_workloads::Spec95;

const PAPER: [(f64, f64); 7] = [
    (0.031, 0.075), // compress
    (0.021, 0.036), // gcc
    (0.019, 0.025), // vortex
    (0.026, 0.024), // perl
    (0.015, 0.027), // ijpeg
    (0.081, 0.093), // mgrid
    (0.023, 0.034), // apsi
];

const MEMORIES: [MemoryKind; 2] = [
    MemoryKind::Arb {
        hit_cycles: 1,
        cache_kb: 32,
    },
    MemoryKind::Svc { kb_per_cache: 8 },
];

fn main() {
    cli::parse_profile_flag("table2");
    println!("Table 2: Miss Ratios for ARB and SVC (32KB total data storage)\n");
    let budget = instruction_budget();
    let jobs = cross(&Spec95::ALL, &MEMORIES);
    let outcome = run_paper_grid(&jobs, budget);

    let mut t = Table::new(
        ["Benchmark", "ARB-32KB", "(paper)", "SVC-4x8KB", "(paper)"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for (i, b) in Spec95::ALL.into_iter().enumerate() {
        let arb = &outcome.results[i * MEMORIES.len()];
        let svc = &outcome.results[i * MEMORIES.len() + 1];
        t.row(vec![
            b.name().into(),
            fmt_ratio(arb.miss_ratio),
            fmt_ratio(PAPER[i].0),
            fmt_ratio(svc.miss_ratio),
            fmt_ratio(PAPER[i].1),
        ]);
    }
    println!("{}", t.render());
    println!("Shape checks:");
    let mut ok = true;
    for (i, b) in Spec95::ALL.into_iter().enumerate() {
        let arb = &outcome.results[i * MEMORIES.len()];
        let svc = &outcome.results[i * MEMORIES.len() + 1];
        let inverted = b == Spec95::Perl;
        let pass = if inverted {
            svc.miss_ratio < arb.miss_ratio
        } else {
            svc.miss_ratio > arb.miss_ratio
        };
        ok &= pass;
        println!(
            "  {} {:8}: SVC {} ARB ({})",
            if pass { "PASS" } else { "FAIL" },
            b.name(),
            if inverted { "<" } else { ">" },
            if i == 3 {
                "perl is the paper's one inversion"
            } else {
                "reference spreading"
            }
        );
    }
    cli::check_io(
        "results/table2.json",
        publish_paper_grid("table2", budget, &outcome),
    );
    std::process::exit(i32::from(!ok));
}
