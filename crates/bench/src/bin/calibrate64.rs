//! 64KB-total calibration view (Figure 20's configuration). Runs
//! through the parallel harness and writes `results/calibrate64.json`.
use svc_bench::{cli, cross, instruction_budget, publish_paper_grid, run_paper_grid, MemoryKind};
use svc_sim::table::{fmt_ipc, fmt_ratio, Table};
use svc_workloads::Spec95;

fn main() {
    cli::parse_profile_flag("calibrate64");
    let budget = instruction_budget();
    let memories: Vec<MemoryKind> = (1..=4)
        .map(|h| MemoryKind::Arb {
            hit_cycles: h,
            cache_kb: 64,
        })
        .chain(std::iter::once(MemoryKind::Svc { kb_per_cache: 16 }))
        .collect();
    let jobs = cross(&Spec95::ALL, &memories);
    let outcome = run_paper_grid(&jobs, budget);

    let mut t = Table::new(
        [
            "bench", "ARB1", "ARB2", "ARB3", "ARB4", "SVC16", "SVCmiss", "bus16K", "(paper)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let paper_bus = [0.341, 0.203, 0.354, 0.291, 0.226, 0.632, 0.255];
    for (i, b) in Spec95::ALL.into_iter().enumerate() {
        let row = &outcome.results[i * memories.len()..(i + 1) * memories.len()];
        let svc = &row[4];
        t.row(vec![
            b.name().into(),
            fmt_ipc(row[0].ipc),
            fmt_ipc(row[1].ipc),
            fmt_ipc(row[2].ipc),
            fmt_ipc(row[3].ipc),
            fmt_ipc(svc.ipc),
            fmt_ratio(svc.miss_ratio),
            fmt_ratio(svc.bus_utilization),
            fmt_ratio(paper_bus[i]),
        ]);
    }
    println!("{}", t.render());
    cli::check_io(
        "results/calibrate64.json",
        publish_paper_grid("calibrate64", budget, &outcome),
    );
}
