//! 64KB-total calibration view (Figure 20's configuration).
use svc_bench::{run_spec95, MemoryKind};
use svc_sim::table::{fmt_ipc, fmt_ratio, Table};
use svc_workloads::Spec95;

fn main() {
    let mut t = Table::new(
        ["bench", "ARB1", "ARB2", "ARB3", "ARB4", "SVC16", "SVCmiss", "bus16K", "(paper)"]
            .iter().map(|s| s.to_string()).collect(),
    );
    let paper_bus = [0.341, 0.203, 0.354, 0.291, 0.226, 0.632, 0.255];
    for (i, b) in Spec95::ALL.into_iter().enumerate() {
        let r: Vec<_> = (1..=4)
            .map(|h| run_spec95(b, MemoryKind::Arb { hit_cycles: h, cache_kb: 64 }))
            .collect();
        let svc = run_spec95(b, MemoryKind::Svc { kb_per_cache: 16 });
        t.row(vec![
            b.name().into(),
            fmt_ipc(r[0].ipc), fmt_ipc(r[1].ipc), fmt_ipc(r[2].ipc), fmt_ipc(r[3].ipc),
            fmt_ipc(svc.ipc), fmt_ratio(svc.miss_ratio),
            fmt_ratio(svc.bus_utilization), fmt_ratio(paper_bus[i]),
        ]);
    }
    println!("{}", t.render());
}
