//! The regression gate: re-runs a fixed, fast experiment grid and diffs
//! the fresh metrics against the checked-in baseline
//! (`results/baseline.json`), exiting non-zero on drift.
//!
//! The grid is pinned — fixed benchmarks, memory systems, budget and
//! grid seed, with harness-derived per-job seeds — and deliberately
//! ignores `SVC_EXPERIMENT_BUDGET` so the gate measures the simulator,
//! not the environment. Per-metric tolerances absorb honest noise-level
//! refactors while still catching behavioral drift:
//!
//! * `ipc`: ±5% relative;
//! * `miss_ratio`, `bus_utilization`: ±10% relative with a 0.005
//!   absolute floor (ratios near zero would make pure relative error
//!   hair-triggered).
//!
//! The grid runs under the failsafe harness, so a crashing cell does not
//! hide the health of the rest: each cell is classified `OK`, `DRIFT`
//! (ran, but a metric moved), `FAILED` (panicked or exhausted its cycle
//! cap — reported with the cell's seed for reproduction), or `MISSING`
//! (no baseline entry).
//!
//! The gate also re-runs the exhaustive model checker (`svc-check`) on
//! every design's pinned bounds and diffs the explored state/transition
//! counts against `results/check.json` — **exactly**, no tolerance:
//! exploration is deterministic, so a single state of drift means the
//! protocol's reachable behaviour changed.
//!
//! Usage: `regress` to check, `regress --update` to rewrite the
//! baseline (and `results/check.json`) after an intentional behavior
//! change.
//!
//! Exit codes: 0 clean, 1 drift, 2 usage, 3 baseline I/O,
//! 4 failed cells (simulator crash/timeout — worse than drift) or a
//! model-check property violation.

use std::process::ExitCode;

use svc_bench::cli::CliError;
use svc_bench::report::{self, Json};
use svc_bench::{cross, run_derived_grid_failsafe, MemoryKind};
use svc_workloads::Spec95;

/// Pinned grid parameters. Changing any of these invalidates the
/// baseline — rerun with `--update`.
const GRID_SEED: u64 = 0xB5E1;
const BUDGET: u64 = 40_000;
const BENCHES: [Spec95; 3] = [Spec95::Gcc, Spec95::Ijpeg, Spec95::Mgrid];
const MEMORIES: [MemoryKind; 4] = [
    MemoryKind::Arb {
        hit_cycles: 1,
        cache_kb: 32,
    },
    MemoryKind::Arb {
        hit_cycles: 2,
        cache_kb: 32,
    },
    MemoryKind::Svc { kb_per_cache: 8 },
    MemoryKind::Svc { kb_per_cache: 16 },
];

/// (metric, relative tolerance, absolute floor).
///
/// `squashes`, `wasted_instrs` and `squash_recovery_cycles` are integer
/// counts on a fully deterministic grid, so any change of ±1 or more is
/// drift (the 0.5 floor only absorbs float round-trip noise);
/// `mshr_combine_rate` likewise must be bit-stable.
const TOLERANCES: [(&str, f64, f64); 7] = [
    ("ipc", 0.05, 0.0),
    ("miss_ratio", 0.10, 0.005),
    ("bus_utilization", 0.10, 0.005),
    ("squashes", 0.0, 0.5),
    ("wasted_instrs", 0.0, 0.5),
    ("squash_recovery_cycles", 0.0, 0.5),
    ("mshr_combine_rate", 0.0, 1e-9),
];

fn baseline_path() -> std::path::PathBuf {
    std::env::var_os("SVC_BASELINE")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| report::results_dir().join("baseline.json"))
}

fn check_path() -> std::path::PathBuf {
    std::env::var_os("SVC_CHECK_BASELINE")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| report::results_dir().join("check.json"))
}

/// Runs the model checker and diffs the explored counts against the
/// pinned `results/check.json`. Returns the number of drift complaints
/// (already printed); a property violation is fatal.
fn check_gate() -> Result<usize, CliError> {
    let fresh = svc_bench::checkgate::fresh_check_doc().map_err(CliError::Invariant)?;
    let path = check_path();
    let text = std::fs::read_to_string(&path).map_err(|e| {
        CliError::io(
            format!(
                "{} (run `regress --update` to create the check baseline)",
                path.display()
            ),
            e,
        )
    })?;
    let baseline = report::parse(&text).map_err(|e| {
        CliError::Io(format!(
            "check baseline {} is not valid JSON: {e}",
            path.display()
        ))
    })?;
    let complaints = svc_bench::checkgate::diff_check(&baseline, &fresh);
    for c in &complaints {
        println!("DRIFT check: {c}");
    }
    Ok(complaints.len())
}

struct Fresh {
    doc: Json,
    failures: Vec<svc_bench::harness::JobFailure>,
}

fn fresh_doc() -> Fresh {
    let jobs = cross(&BENCHES, &MEMORIES);
    let outcome = run_derived_grid_failsafe(&jobs, GRID_SEED, BUDGET);
    let seeds = svc_bench::harness::job_seeds(GRID_SEED, jobs.len());
    let runs = outcome
        .results
        .iter()
        .zip(&seeds)
        .filter_map(|(r, &s)| r.as_ref().map(|r| report::experiment_result_json(r, s)))
        .collect();
    Fresh {
        doc: report::experiment_doc_failsafe("regress", BUDGET, GRID_SEED, runs, &outcome.failures),
        failures: outcome.failures,
    }
}

fn run_key(run: &Json) -> String {
    format!(
        "{}/{}",
        run.get("workload").and_then(Json::as_str).unwrap_or("?"),
        run.get("memory").and_then(Json::as_str).unwrap_or("?"),
    )
}

fn run(update: bool) -> Result<ExitCode, CliError> {
    let path = baseline_path();
    let fresh = fresh_doc();

    // Cells that never produced metrics: report them regardless of mode.
    // `FAILED` is a different statement than `DRIFT` — the simulator
    // crashed or ran out of cycles, so there is nothing to compare.
    let jobs = cross(&BENCHES, &MEMORIES);
    for f in &fresh.failures {
        let job = &jobs[f.index];
        println!(
            "FAILED {}/{}: {} after {} attempt(s) at seed {:#x}{}{}",
            job.bench.name(),
            job.memory.label(svc_bench::NUM_PUS),
            f.error.kind(),
            f.attempts,
            f.seed,
            if f.error.detail().is_empty() {
                ""
            } else {
                ": "
            },
            f.error.detail(),
        );
    }

    if update {
        if !fresh.failures.is_empty() {
            return Err(CliError::Invariant(format!(
                "refusing to update the baseline: {} grid cell(s) failed",
                fresh.failures.len()
            )));
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| CliError::io(dir.display(), e))?;
        }
        svc_bench::report::write_atomic(&path, fresh.doc.render().as_bytes())
            .map_err(|e| CliError::io(path.display(), e))?;
        println!("baseline updated: {}", path.display());
        let check_doc = svc_bench::checkgate::fresh_check_doc().map_err(CliError::Invariant)?;
        let cpath = check_path();
        svc_bench::report::write_atomic(&cpath, check_doc.render().as_bytes())
            .map_err(|e| CliError::io(cpath.display(), e))?;
        println!("check baseline updated: {}", cpath.display());
        return Ok(ExitCode::SUCCESS);
    }

    let text = std::fs::read_to_string(&path).map_err(|e| {
        CliError::io(
            format!(
                "{} (run `regress --update` to create a baseline)",
                path.display()
            ),
            e,
        )
    })?;
    let baseline = report::parse(&text).map_err(|e| {
        CliError::Io(format!(
            "baseline {} is not valid JSON: {e}",
            path.display()
        ))
    })?;

    let empty = [];
    let base_runs = baseline
        .get("runs")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let fresh_runs = fresh
        .doc
        .get("runs")
        .and_then(Json::as_arr)
        .expect("fresh runs");

    let mut drifted = 0;
    let mut compared = 0;
    for fresh_run in fresh_runs {
        let key = run_key(fresh_run);
        let Some(base_run) = base_runs.iter().find(|r| run_key(r) == key) else {
            println!("MISSING {key}: not in baseline (run `regress --update`?)");
            drifted += 1;
            continue;
        };
        for (metric, rel_tol, abs_floor) in TOLERANCES {
            let get = |run: &Json| run.get(metric).and_then(Json::as_f64);
            let (Some(base), Some(now)) = (get(base_run), get(fresh_run)) else {
                println!("MISSING {key}.{metric}");
                drifted += 1;
                continue;
            };
            compared += 1;
            let allowed = (base.abs() * rel_tol).max(abs_floor);
            let diff = (now - base).abs();
            if diff > allowed {
                println!(
                    "DRIFT {key}.{metric}: baseline {base:.4}, now {now:.4} \
                     (|diff| {diff:.4} > allowed {allowed:.4})"
                );
                drifted += 1;
            }
        }
    }
    // Exhaustive model-check gate: explored counts are pinned exactly.
    drifted += check_gate()?;

    // Failed cells are absent from `runs`, so only flag a shape mismatch
    // the failures don't already explain.
    if base_runs.len() != fresh_runs.len() + fresh.failures.len() {
        println!(
            "GRID SHAPE: baseline has {} runs, fresh grid has {} (+{} failed)",
            base_runs.len(),
            fresh_runs.len(),
            fresh.failures.len()
        );
        drifted += 1;
    }

    if !fresh.failures.is_empty() {
        println!(
            "regress: {} cell(s) FAILED, {drifted} drift(s) against {}",
            fresh.failures.len(),
            path.display()
        );
        return Err(CliError::Invariant(format!(
            "{} grid cell(s) failed to produce metrics",
            fresh.failures.len()
        )));
    }
    if drifted == 0 {
        println!(
            "regress: {compared} metrics within tolerance of {}",
            path.display()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "regress: {drifted} drift(s) detected against {}",
            path.display()
        );
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    let mut update = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--update" => update = true,
            other => {
                eprintln!("usage error: unknown argument {other:?}\nusage: regress [--update]");
                return ExitCode::from(svc_bench::cli::EXIT_USAGE);
            }
        }
    }
    match run(update) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(e.exit_code())
        }
    }
}
