//! Extra-large scaling study: the SVC sharded far past the paper's
//! 4-8 PU design point (64/128/256 PUs), where a single simulated
//! machine is big enough that one grid cell is hours of sequential
//! simulation at full budget. This is the experiment family the
//! parallel engine exists for:
//!
//! * `SVC_ENGINE_THREADS=N` shards each machine's per-cycle access
//!   planning across N lanes — byte-identical artifacts at any N;
//! * `SVC_GRID_JOURNAL=dir` journals finished cells, so an interrupted
//!   multi-billion-cycle sweep resumes from the completed cells;
//! * `SVC_EXPERIMENT_BUDGET=N` scales the per-cell instruction budget
//!   (the committed default keeps regeneration tractable; push it up
//!   for the long-haul runs).
//!
//! The 9-cell grid (3 benchmarks × 3 PU counts, final SVC design) runs
//! through the parallel harness and writes `results/scaling-xl.json`;
//! memory labels encode the PU count (e.g. `SVC-128x8KB`).

use svc_bench::{
    cli, harness, publish_paper_grid, run_source, MemoryKind, GRID_JOURNAL_ENV, PAPER_SEED,
};
use svc_multiscalar::EngineConfig;
use svc_sim::table::{fmt_ipc, fmt_ratio, Table};
use svc_workloads::Spec95;

const BENCHES: [Spec95; 3] = [Spec95::Gcc, Spec95::Ijpeg, Spec95::Mgrid];
const PUS: [usize; 3] = [64, 128, 256];
const MEMORY: MemoryKind = MemoryKind::Svc { kb_per_cache: 8 };

fn main() {
    cli::parse_profile_flag("scaling-xl");
    let budget: u64 = std::env::var("SVC_EXPERIMENT_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400_000);
    let mut jobs = Vec::new();
    for bench in BENCHES {
        for pus in PUS {
            jobs.push((bench, pus));
        }
    }
    let run = |&(bench, pus): &(Spec95, usize), _derived: u64| {
        let wl = bench.workload(PAPER_SEED);
        let cfg = EngineConfig {
            num_pus: pus,
            predictor: wl.profile().predictor(PAPER_SEED),
            max_instructions: budget,
            // The safety stop must clear a multi-billion-cycle budget:
            // hundreds of PUs on one snooping bus serialize hard, so
            // cycles per committed instruction ballooon far beyond the
            // small-machine grids.
            max_cycles: u64::MAX / 4,
            seed: PAPER_SEED,
            garbage_addr_space: wl.profile().hot_set.max(64),
            load_dep_frac: wl.profile().load_dep_frac,
            ..EngineConfig::default()
        };
        run_source(&wl, MEMORY, cfg)
    };
    let outcome = match std::env::var_os(GRID_JOURNAL_ENV) {
        Some(dir) => {
            let sub = std::path::PathBuf::from(dir)
                .join(format!("scaling-xl-{PAPER_SEED:016x}-{:03}", jobs.len()));
            match harness::GridJournal::open(sub, PAPER_SEED) {
                Ok(journal) => harness::run_grid_resumable(
                    &jobs,
                    PAPER_SEED,
                    harness::threads_from_env(),
                    &journal,
                    |&(bench, pus)| format!("{}/SVC-{pus}x8KB", bench.name()),
                    run,
                ),
                Err(e) => {
                    eprintln!("grid journal unavailable (running without): {e}");
                    harness::run_grid(&jobs, PAPER_SEED, run)
                }
            }
        }
        None => harness::run_grid(&jobs, PAPER_SEED, run),
    };

    let mut t = Table::new(
        ["bench", "PUs", "IPC", "IPC/PU", "bus util"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for (bi, bench) in BENCHES.into_iter().enumerate() {
        for (pi, pus) in PUS.into_iter().enumerate() {
            let r = &outcome.results[bi * PUS.len() + pi];
            t.row(vec![
                bench.to_string(),
                format!("{pus}"),
                fmt_ipc(r.ipc),
                format!("{:.4}", r.ipc / pus as f64),
                fmt_ratio(r.bus_utilization),
            ]);
        }
    }
    println!("SVC far beyond the paper's design point:\n\n{}", t.render());
    println!("Expected shape: one snooping bus cannot feed hundreds of PUs — IPC");
    println!("per PU collapses as bus utilization pins at 1.0. The paper's shared-");
    println!("bus bottleneck, measured instead of argued.");
    cli::check_io(
        "results/scaling-xl.json",
        publish_paper_grid("scaling-xl", budget, &outcome),
    );
}
