//! The paper's §1 motivation, quantified: three generations of
//! speculative-versioning hardware on the same workloads.
//!
//! * a centralized **load/store queue** — works, but its capacity (number
//!   of buffered stores) and its single shared port limit speculation;
//! * the **ARB** — tracks addresses instead of stores, fixing capacity,
//!   but still a shared structure whose hit latency taxes every access;
//! * the **SVC** — private caches: 1-cycle hits, capacity scales with
//!   PUs, at the cost of a snooping bus and lower hit rates.
//!
//! The 12-cell grid runs through the parallel harness and writes
//! `results/motivation.json`.
//!
//! Run: `cargo run --release -p svc-bench --bin motivation`

use svc::{SvcConfig, SvcSystem};
use svc_arb::{ArbConfig, ArbSystem};
use svc_bench::{cli, harness, publish_paper_grid, ExperimentResult, NUM_PUS, PAPER_SEED};
use svc_lsq::{LsqConfig, LsqMemory};
use svc_multiscalar::{Engine, EngineConfig, RunReport};
use svc_sim::profile::Profiler;
use svc_sim::table::{fmt_ipc, Table};
use svc_types::VersionedMemory;
use svc_workloads::Spec95;

#[derive(Debug, Clone, Copy)]
enum Design {
    Lsq16,
    Lsq64,
    Arb2,
    Svc,
}

impl Design {
    const ALL: [Design; 4] = [Design::Lsq16, Design::Lsq64, Design::Arb2, Design::Svc];

    fn label(self) -> &'static str {
        match self {
            Design::Lsq16 => "LSQ-16",
            Design::Lsq64 => "LSQ-64",
            Design::Arb2 => "ARB-2c-32KB",
            Design::Svc => "SVC-4x8KB",
        }
    }
}

fn run<M: VersionedMemory>(mem: M, bench: Spec95, budget: u64, profiler: &Profiler) -> RunReport {
    let wl = bench.workload(PAPER_SEED);
    let cfg = EngineConfig {
        num_pus: NUM_PUS,
        predictor: wl.profile().predictor(PAPER_SEED),
        max_instructions: budget,
        seed: PAPER_SEED,
        garbage_addr_space: wl.profile().hot_set.max(64),
        load_dep_frac: wl.profile().load_dep_frac,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(cfg, mem);
    engine.set_profiler(profiler.clone());
    engine.run(&wl)
}

fn run_cell(bench: Spec95, design: Design, budget: u64) -> ExperimentResult {
    // The LSQ designs predate the profiler's memory-side hooks, so their
    // memory time profiles as generic latency; the ARB and SVC report
    // their full decompositions.
    let profiler = Profiler::from_env(NUM_PUS);
    let report = match design {
        Design::Lsq16 => {
            let small = LsqConfig {
                store_entries: 16,
                load_entries: 16,
                ..LsqConfig::default()
            };
            run(LsqMemory::new(small), bench, budget, &profiler)
        }
        Design::Lsq64 => run(
            LsqMemory::new(LsqConfig::default()),
            bench,
            budget,
            &profiler,
        ),
        Design::Arb2 => {
            let mut mem = ArbSystem::new(ArbConfig::paper(NUM_PUS, 2, 32));
            mem.set_profiler(profiler.clone());
            run(mem, bench, budget, &profiler)
        }
        Design::Svc => {
            let mut mem = SvcSystem::new(SvcConfig::final_design(NUM_PUS));
            mem.set_profiler(profiler.clone());
            run(mem, bench, budget, &profiler)
        }
    };
    ExperimentResult {
        workload: bench.name().to_string(),
        memory: design.label().to_string(),
        ipc: report.ipc(),
        miss_ratio: report.mem.miss_ratio(),
        bus_utilization: report.bus_utilization(),
        profile: profiler.report(),
        report,
    }
}

const BENCHES: [Spec95; 3] = [Spec95::Compress, Spec95::Gcc, Spec95::Mgrid];

fn main() {
    cli::parse_profile_flag("motivation");
    let budget: u64 = std::env::var("SVC_EXPERIMENT_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300_000);
    let mut jobs = Vec::new();
    for bench in BENCHES {
        for design in Design::ALL {
            jobs.push((bench, design));
        }
    }
    let outcome = harness::run_grid(&jobs, PAPER_SEED, |&(bench, design), _derived| {
        run_cell(bench, design, budget)
    });

    let mut t = Table::new(
        ["bench", "LSQ-16", "LSQ-64", "ARB-2c", "SVC", "LSQ16 stalls"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let mut ok = true;
    for (bi, bench) in BENCHES.into_iter().enumerate() {
        let row = &outcome.results[bi * Design::ALL.len()..(bi + 1) * Design::ALL.len()];
        let (lsq16, lsq64, arb, svc) = (&row[0], &row[1], &row[2], &row[3]);
        t.row(vec![
            bench.name().into(),
            fmt_ipc(lsq16.ipc),
            fmt_ipc(lsq64.ipc),
            fmt_ipc(arb.ipc),
            fmt_ipc(svc.ipc),
            format!("{}", lsq16.report.mem.replacement_stalls),
        ]);
        // The capacity story: the small queue must visibly stall.
        ok &= lsq16.report.mem.replacement_stalls > lsq64.report.mem.replacement_stalls;
        ok &= lsq16.ipc <= lsq64.ipc + 0.02;
    }
    println!("Motivation (paper §1): LSQ -> ARB -> SVC\n");
    println!("{}", t.render());
    println!("LSQ-16/LSQ-64: 16- vs 64-entry store/load queues (capacity stalls);");
    println!("ARB-2c: contention-free shared buffer, 2-cycle hits; SVC: 4x8KB.");
    cli::check_io(
        "results/motivation.json",
        publish_paper_grid("motivation", budget, &outcome),
    );
    std::process::exit(i32::from(!ok));
}
