//! The paper's §1 motivation, quantified: three generations of
//! speculative-versioning hardware on the same workloads.
//!
//! * a centralized **load/store queue** — works, but its capacity (number
//!   of buffered stores) and its single shared port limit speculation;
//! * the **ARB** — tracks addresses instead of stores, fixing capacity,
//!   but still a shared structure whose hit latency taxes every access;
//! * the **SVC** — private caches: 1-cycle hits, capacity scales with
//!   PUs, at the cost of a snooping bus and lower hit rates.
//!
//! Run: `cargo run --release -p svc-bench --bin motivation`

use svc_arb::{ArbConfig, ArbSystem};
use svc_bench::NUM_PUS;
use svc_lsq::{LsqConfig, LsqMemory};
use svc_multiscalar::{Engine, EngineConfig, RunReport};
use svc_sim::table::{fmt_ipc, Table};
use svc_types::VersionedMemory;
use svc_workloads::Spec95;
use svc::{SvcConfig, SvcSystem};

fn run<M: VersionedMemory>(mem: M, bench: Spec95, budget: u64) -> RunReport {
    let wl = bench.workload(42);
    let cfg = EngineConfig {
        num_pus: NUM_PUS,
        predictor: wl.profile().predictor(42),
        max_instructions: budget,
        seed: 42,
        garbage_addr_space: wl.profile().hot_set.max(64),
        load_dep_frac: wl.profile().load_dep_frac,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(cfg, mem);
    engine.run(&wl)
}

fn main() {
    let budget: u64 = std::env::var("SVC_EXPERIMENT_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300_000);
    let mut t = Table::new(
        [
            "bench", "LSQ-16", "LSQ-64", "ARB-2c", "SVC", "LSQ16 stalls",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut ok = true;
    for bench in [Spec95::Compress, Spec95::Gcc, Spec95::Mgrid] {
        let small = LsqConfig {
            store_entries: 16,
            load_entries: 16,
            ..LsqConfig::default()
        };
        let lsq16 = run(LsqMemory::new(small), bench, budget);
        let lsq64 = run(LsqMemory::new(LsqConfig::default()), bench, budget);
        let arb = run(ArbSystem::new(ArbConfig::paper(NUM_PUS, 2, 32)), bench, budget);
        let svc = run(SvcSystem::new(SvcConfig::final_design(NUM_PUS)), bench, budget);
        t.row(vec![
            bench.name().into(),
            fmt_ipc(lsq16.ipc()),
            fmt_ipc(lsq64.ipc()),
            fmt_ipc(arb.ipc()),
            fmt_ipc(svc.ipc()),
            format!("{}", lsq16.mem.replacement_stalls),
        ]);
        // The capacity story: the small queue must visibly stall.
        ok &= lsq16.mem.replacement_stalls > lsq64.mem.replacement_stalls;
        ok &= lsq16.ipc() <= lsq64.ipc() + 0.02;
    }
    println!("Motivation (paper §1): LSQ -> ARB -> SVC\n");
    println!("{}", t.render());
    println!("LSQ-16/LSQ-64: 16- vs 64-entry store/load queues (capacity stalls);");
    println!("ARB-2c: contention-free shared buffer, 2-cycle hits; SVC: 4x8KB.");
    std::process::exit(i32::from(!ok));
}
