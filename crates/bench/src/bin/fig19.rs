//! **Figure 19** of the paper: SPEC95 IPCs for the ARB (hit latency 1–4
//! cycles, contention-free) and the SVC (1-cycle private hits), at 32KB
//! total data storage.
//!
//! Shape targets (§4.4): (i) ARB IPC falls monotonically with hit
//! latency; (ii) the SVC beats the ARB at 3+ cycles everywhere and at 2
//! cycles for gcc, apsi and mgrid; (iii) the SVC is close to the 1-cycle
//! ARB on the rest.
//!
//! The 35-cell grid (7 benchmarks × 5 memory systems) runs through the
//! parallel harness; `results/<name>.json` is written alongside the
//! table. `fig20.rs` includes this file for the 64KB variant.

use svc_bench::harness::GridOutcome;
use svc_bench::{
    cli, cross, instruction_budget, publish_paper_grid, run_paper_grid, ExperimentResult,
    MemoryKind,
};
use svc_sim::table::{fmt_ipc, fmt_pct, Table};
use svc_workloads::Spec95;

#[allow(dead_code)]
fn main() {
    cli::parse_profile_flag("fig19");
    let run = run_figure(
        "fig19",
        32,
        8,
        "Figure 19: SPEC95 IPCs for ARB and SVC — 32KB total data storage",
    );
    std::process::exit(i32::from(!run.ok));
}

/// One figure run: the grid outcome plus the shape-check verdict.
pub struct FigureRun {
    /// Per-cell results in grid order (5 memories per benchmark:
    /// ARB 1c..4c, then SVC).
    pub outcome: GridOutcome<ExperimentResult>,
    /// Whether every shape check passed.
    pub ok: bool,
}

pub fn run_figure(name: &str, arb_kb: usize, svc_kb: usize, title: &str) -> FigureRun {
    println!("{title}\n");
    let budget = instruction_budget();
    let memories: Vec<MemoryKind> = (1..=4)
        .map(|h| MemoryKind::Arb {
            hit_cycles: h,
            cache_kb: arb_kb,
        })
        .chain(std::iter::once(MemoryKind::Svc {
            kb_per_cache: svc_kb,
        }))
        .collect();
    let jobs = cross(&Spec95::ALL, &memories);
    let outcome = run_paper_grid(&jobs, budget);

    let mut t = Table::new(
        [
            "Benchmark",
            "ARB(1c)",
            "ARB(2c)",
            "ARB(3c)",
            "ARB(4c)",
            "SVC(1c)",
            "SVC vs ARB2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut ok = true;
    let mut checks = Vec::new();
    for (i, b) in Spec95::ALL.into_iter().enumerate() {
        let row = &outcome.results[i * memories.len()..(i + 1) * memories.len()];
        let arb: Vec<f64> = row[..4].iter().map(|r| r.ipc).collect();
        let svc = row[4].ipc;
        t.row(vec![
            b.name().into(),
            fmt_ipc(arb[0]),
            fmt_ipc(arb[1]),
            fmt_ipc(arb[2]),
            fmt_ipc(arb[3]),
            fmt_ipc(svc),
            fmt_pct(svc / arb[1] - 1.0),
        ]);
        // (i) monotone ARB degradation
        let mono = arb.windows(2).all(|w| w[0] > w[1]);
        ok &= mono;
        checks.push(format!(
            "  {} {:8}: ARB IPC falls monotonically 1c..4c",
            if mono { "PASS" } else { "FAIL" },
            b.name()
        ));
        // (ii) SVC > ARB(3c) everywhere
        let beats3 = svc > arb[2];
        ok &= beats3;
        checks.push(format!(
            "  {} {:8}: SVC ({svc:.2}) > ARB-3c ({:.2})",
            if beats3 { "PASS" } else { "FAIL" },
            b.name(),
            arb[2]
        ));
        // (iii) SVC > ARB(2c) for gcc, apsi, mgrid
        if matches!(b, Spec95::Gcc | Spec95::Apsi | Spec95::Mgrid) {
            let beats2 = svc > arb[1];
            ok &= beats2;
            checks.push(format!(
                "  {} {:8}: SVC ({svc:.2}) > ARB-2c ({:.2}) [paper: gcc/apsi/mgrid]",
                if beats2 { "PASS" } else { "FAIL" },
                b.name(),
                arb[1]
            ));
        }
    }
    println!("{}", t.render());
    println!("Shape checks:");
    for c in checks {
        println!("{c}");
    }
    cli::check_io(
        format!("results/{name}.json"),
        publish_paper_grid(name, budget, &outcome),
    );
    FigureRun { outcome, ok }
}
