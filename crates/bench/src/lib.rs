//! The experiment harness: one function per metric the paper reports,
//! shared by the table/figure binaries (`table2`, `table3`, `fig19`,
//! `fig20`, the ablations) and the Criterion benches.
//!
//! Every experiment builds a memory system ([`MemoryKind`]), runs a
//! [`Spec95`] workload (or a kernel) on the multiscalar engine for a
//! committed-instruction budget, and reports the paper's metrics: IPC
//! (Figures 19/20), miss ratio (Table 2) and snooping-bus utilization
//! (Table 3).
//!
//! The default budget is 400k committed instructions per run — the
//! paper's 200M scaled to laptop time; override with the
//! `SVC_EXPERIMENT_BUDGET` environment variable (the shapes are stable
//! well below the default, see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use svc::{SvcConfig, SvcSystem};
use svc_arb::{ArbConfig, ArbSystem};
use svc_multiscalar::{Engine, EngineConfig, RunReport, TaskSource};
use svc_workloads::Spec95;

/// Which memory system to run an experiment on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryKind {
    /// The SVC final design with `kb_per_cache` KB per private cache
    /// (the paper's 4×8KB and 4×16KB points).
    Svc {
        /// KB per private cache.
        kb_per_cache: usize,
    },
    /// The ARB with the given hit latency and backing-cache size (the
    /// paper's 32KB/64KB, 1–4 cycle points).
    Arb {
        /// Access latency of the shared structure, cycles.
        hit_cycles: u64,
        /// Backing data-cache size in KB.
        cache_kb: usize,
    },
}

impl MemoryKind {
    /// Short label used in tables, e.g. `SVC-4x8KB` or `ARB-2c-32KB`.
    pub fn label(&self, num_pus: usize) -> String {
        match *self {
            MemoryKind::Svc { kb_per_cache } => format!("SVC-{num_pus}x{kb_per_cache}KB"),
            MemoryKind::Arb {
                hit_cycles,
                cache_kb,
            } => format!("ARB-{hit_cycles}c-{cache_kb}KB"),
        }
    }
}

/// The measurements one experiment run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Workload name.
    pub workload: String,
    /// Memory-system label.
    pub memory: String,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// Next-level-fill miss ratio (the paper's Table 2 definition).
    pub miss_ratio: f64,
    /// Snooping-bus utilization (0 for the ARB: it has no shared bus).
    pub bus_utilization: f64,
    /// The full engine report, for deeper digging.
    pub report: RunReport,
}

/// The number of processing units used throughout the evaluation (§4.2).
pub const NUM_PUS: usize = 4;

/// Committed-instruction budget per run, overridable via
/// `SVC_EXPERIMENT_BUDGET`.
pub fn instruction_budget() -> u64 {
    std::env::var("SVC_EXPERIMENT_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400_000)
}

/// Runs `source` on `memory` with the engine configured per the paper
/// (4 PUs, 2-issue) and the workload's predictor model.
pub fn run_source(
    source: &dyn TaskSource,
    memory: MemoryKind,
    engine_cfg: EngineConfig,
) -> ExperimentResult {
    let label = memory.label(engine_cfg.num_pus);
    let report = match memory {
        MemoryKind::Svc { kb_per_cache } => {
            let mut cfg = SvcConfig::final_design(engine_cfg.num_pus);
            cfg.geometry = SvcConfig::paper_geometry(kb_per_cache);
            let mut engine = Engine::new(engine_cfg, SvcSystem::new(cfg));
            engine.run(source)
        }
        MemoryKind::Arb {
            hit_cycles,
            cache_kb,
        } => {
            let cfg = ArbConfig::paper(engine_cfg.num_pus, hit_cycles, cache_kb);
            let mut engine = Engine::new(engine_cfg, ArbSystem::new(cfg));
            engine.run(source)
        }
    };
    ExperimentResult {
        workload: source.name().to_string(),
        memory: label,
        ipc: report.ipc(),
        miss_ratio: report.mem.miss_ratio(),
        bus_utilization: report.bus_utilization(),
        report,
    }
}

/// Runs one SPEC95 benchmark model on `memory` with the default budget
/// and seed.
pub fn run_spec95(bench: Spec95, memory: MemoryKind) -> ExperimentResult {
    run_spec95_with(bench, memory, instruction_budget(), 42)
}

/// Runs one SPEC95 benchmark model with an explicit budget and seed.
pub fn run_spec95_with(
    bench: Spec95,
    memory: MemoryKind,
    budget: u64,
    seed: u64,
) -> ExperimentResult {
    let wl = bench.workload(seed);
    let cfg = EngineConfig {
        num_pus: NUM_PUS,
        predictor: wl.profile().predictor(seed),
        max_instructions: budget,
        seed,
        // Wrong-path work touches warm program data (the hot region),
        // as real wrong-path execution does — not a cold private region.
        garbage_addr_space: wl.profile().hot_set.max(64),
        load_dep_frac: wl.profile().load_dep_frac,
        ..EngineConfig::default()
    };
    run_source(&wl, memory, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(MemoryKind::Svc { kb_per_cache: 8 }.label(4), "SVC-4x8KB");
        assert_eq!(
            MemoryKind::Arb {
                hit_cycles: 2,
                cache_kb: 32
            }
            .label(4),
            "ARB-2c-32KB"
        );
    }

    #[test]
    fn tiny_run_produces_sane_metrics() {
        let r = run_spec95_with(Spec95::Ijpeg, MemoryKind::Svc { kb_per_cache: 8 }, 5_000, 7);
        assert!(r.ipc > 0.0 && r.ipc < 8.0, "ipc {}", r.ipc);
        assert!(r.miss_ratio >= 0.0 && r.miss_ratio < 1.0);
        assert!(r.bus_utilization >= 0.0 && r.bus_utilization <= 1.0);
        assert!(!r.report.hit_cycle_limit);
    }

    #[test]
    fn arb_run_has_no_bus() {
        let r = run_spec95_with(
            Spec95::Ijpeg,
            MemoryKind::Arb {
                hit_cycles: 1,
                cache_kb: 32,
            },
            5_000,
            7,
        );
        assert_eq!(r.bus_utilization, 0.0);
    }

    #[test]
    fn budget_env_override() {
        // Default without the env var.
        std::env::remove_var("SVC_EXPERIMENT_BUDGET");
        assert_eq!(instruction_budget(), 400_000);
    }
}
