//! The experiment harness: one function per metric the paper reports,
//! shared by the table/figure binaries (`table2`, `table3`, `fig19`,
//! `fig20`, the ablations) and the Criterion benches.
//!
//! Every experiment builds a memory system ([`MemoryKind`]), runs a
//! [`Spec95`] workload (or a kernel) on the multiscalar engine for a
//! committed-instruction budget, and reports the paper's metrics: IPC
//! (Figures 19/20), miss ratio (Table 2) and snooping-bus utilization
//! (Table 3).
//!
//! The default budget is 400k committed instructions per run — the
//! paper's 200M scaled to laptop time; override with the
//! `SVC_EXPERIMENT_BUDGET` environment variable (the shapes are stable
//! well below the default, see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkgate;
pub mod cli;
pub mod harness;
pub mod report;
pub mod soak;

use svc::{SvcConfig, SvcSystem};
use svc_arb::{ArbConfig, ArbSystem};
use svc_multiscalar::{Engine, EngineConfig, RunReport, TaskSource};
use svc_sim::fault::Faults;
use svc_sim::metrics::{MetricSource, MetricsRegistry};
use svc_sim::profile::{ProfileReport, Profiler};
use svc_sim::trace::Tracer;
use svc_workloads::Spec95;

/// Which memory system to run an experiment on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryKind {
    /// The SVC final design with `kb_per_cache` KB per private cache
    /// (the paper's 4×8KB and 4×16KB points).
    Svc {
        /// KB per private cache.
        kb_per_cache: usize,
    },
    /// The ARB with the given hit latency and backing-cache size (the
    /// paper's 32KB/64KB, 1–4 cycle points).
    Arb {
        /// Access latency of the shared structure, cycles.
        hit_cycles: u64,
        /// Backing data-cache size in KB.
        cache_kb: usize,
    },
}

impl MemoryKind {
    /// Short label used in tables, e.g. `SVC-4x8KB` or `ARB-2c-32KB`.
    pub fn label(&self, num_pus: usize) -> String {
        match *self {
            MemoryKind::Svc { kb_per_cache } => format!("SVC-{num_pus}x{kb_per_cache}KB"),
            MemoryKind::Arb {
                hit_cycles,
                cache_kb,
            } => format!("ARB-{hit_cycles}c-{cache_kb}KB"),
        }
    }
}

/// The measurements one experiment run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Workload name.
    pub workload: String,
    /// Memory-system label.
    pub memory: String,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// Next-level-fill miss ratio (the paper's Table 2 definition).
    pub miss_ratio: f64,
    /// Snooping-bus utilization (0 for the ARB: it has no shared bus).
    pub bus_utilization: f64,
    /// The full engine report, for deeper digging.
    pub report: RunReport,
    /// The cycle-accounting profile, present only when `SVC_PROFILE`
    /// enabled the profiler for this run. Never serialized into the
    /// `results/<name>.json` document (which stays byte-identical with
    /// the profiler on or off); published separately as
    /// `results/<name>.profile.json`.
    pub profile: Option<ProfileReport>,
}

impl Default for ExperimentResult {
    fn default() -> ExperimentResult {
        ExperimentResult {
            workload: String::new(),
            memory: String::new(),
            ipc: 0.0,
            miss_ratio: 0.0,
            bus_utilization: 0.0,
            report: RunReport::default(),
            profile: None,
        }
    }
}

impl svc_types::Checkpointable for ExperimentResult {
    fn save_state(&self, w: &mut svc_types::CkptWriter) {
        self.workload.save_state(w);
        self.memory.save_state(w);
        self.ipc.save_state(w);
        self.miss_ratio.save_state(w);
        self.bus_utilization.save_state(w);
        self.report.save_state(w);
        self.profile.save_state(w);
    }
    fn restore_state(
        &mut self,
        r: &mut svc_types::CkptReader<'_>,
    ) -> Result<(), svc_types::CkptError> {
        self.workload.restore_state(r)?;
        self.memory.restore_state(r)?;
        self.ipc.restore_state(r)?;
        self.miss_ratio.restore_state(r)?;
        self.bus_utilization.restore_state(r)?;
        self.report.restore_state(r)?;
        self.profile.restore_state(r)?;
        Ok(())
    }
}

impl ExperimentResult {
    /// This cell's unified metrics registry (engine counters, derived
    /// rates, the task-length histogram, and every memory-system
    /// counter), as serialized into the `metrics` object of
    /// `results/<name>.json` by `report::metrics_json`.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        self.report.export_metrics("", &mut reg);
        reg
    }
}

/// The number of processing units used throughout the evaluation (§4.2).
pub const NUM_PUS: usize = 4;

/// Committed-instruction budget per run, overridable via
/// `SVC_EXPERIMENT_BUDGET`.
pub fn instruction_budget() -> u64 {
    std::env::var("SVC_EXPERIMENT_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400_000)
}

/// Invariant-watchdog cadence from `SVC_WATCHDOG`: unset/`0` disables
/// it, `1` enables the default cadence (a sweep every 256 cycles), any
/// larger value is the explicit cycle cadence. Commit/squash-boundary
/// checks run whenever the watchdog is enabled, at any cadence.
pub fn watchdog_from_env() -> u64 {
    match std::env::var("SVC_WATCHDOG")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
    {
        0 => 0,
        1 => 256,
        n => n,
    }
}

/// With the env-driven watchdog on, a violation means the simulator
/// corrupted speculative state silently — fail loudly so `SVC_WATCHDOG=1
/// cargo test` turns every test into an invariant check.
fn assert_watchdog_clean(watchdog: u64, violations: &[svc_types::InvariantViolation], label: &str) {
    if watchdog == 0 || violations.is_empty() {
        return;
    }
    let first = &violations[0];
    panic!(
        "SVC_WATCHDOG: {} invariant violation(s) on {label}; first: {} at cycle {} ({})",
        violations.len(),
        first.kind.name(),
        first.cycle.0,
        first.detail,
    );
}

/// Runs `source` on `memory` with the engine configured per the paper
/// (4 PUs, 2-issue) and the workload's predictor model.
///
/// Tracing is driven by the environment: when `SVC_TRACE` names one or
/// more categories, the run records events ([`Tracer::from_env`]) and —
/// if `SVC_TRACE_OUT` points at a directory — writes the three sinks to
/// `$SVC_TRACE_OUT/<workload>-<memory>-<seed>.{log,jsonl,trace.json}`.
///
/// Robustness is likewise env-driven: `SVC_FAULTS` attaches a seeded
/// fault injector ([`Faults::from_env`]) and `SVC_WATCHDOG` an invariant
/// watchdog ([`watchdog_from_env`]); with both unset the run is
/// byte-identical to a build without either feature.
pub fn run_source(
    source: &dyn TaskSource,
    memory: MemoryKind,
    engine_cfg: EngineConfig,
) -> ExperimentResult {
    let tracer = Tracer::from_env();
    let active = tracer.is_active();
    let result = run_source_with(source, memory, engine_cfg, tracer.clone());
    if active {
        if let Some(dir) = std::env::var_os("SVC_TRACE_OUT") {
            if let Err(e) = write_trace_files(dir.as_ref(), &result, engine_cfg.seed, &tracer) {
                eprintln!("SVC_TRACE_OUT: {e}");
            }
        }
    }
    result
}

/// [`run_source`] with an explicit [`Tracer`] attached to both the
/// memory system and the execution engine, interleaving memory and
/// task-lifecycle events in one ring. The caller keeps a clone of the
/// tracer and drains it with [`Tracer::records`] after the run.
pub fn run_source_with(
    source: &dyn TaskSource,
    memory: MemoryKind,
    engine_cfg: EngineConfig,
    tracer: Tracer,
) -> ExperimentResult {
    match prepare_engine(memory, engine_cfg, tracer) {
        PreparedEngine::Svc(mut p) => {
            let report = p.engine.run(source);
            p.finish(source.name(), report)
        }
        PreparedEngine::Arb(mut p) => {
            let report = p.engine.run(source);
            p.finish(source.name(), report)
        }
    }
}

/// A fully attached engine (tracer, env-driven faults, watchdog,
/// profiler — the exact wiring of [`run_source_with`]) plus the pieces
/// needed to assemble an [`ExperimentResult`] once the run completes.
/// For callers that drive the run themselves, like the `svc-sim`
/// checkpointing driver pausing at cycle boundaries.
#[derive(Debug)]
pub struct Prepared<M> {
    /// The engine, ready to run (or to restore a checkpoint into).
    pub engine: Engine<M>,
    /// The attached profiler handle (for the result's profile report).
    pub profiler: Profiler,
    /// The watchdog period the engine was armed with.
    pub watchdog: u64,
    /// The memory-system label for reports.
    pub label: String,
}

impl<M: svc_types::VersionedMemory> Prepared<M> {
    /// Assembles the result after the engine finished, enforcing the
    /// env-driven watchdog contract.
    pub fn finish(&mut self, workload: &str, report: RunReport) -> ExperimentResult {
        assert_watchdog_clean(self.watchdog, self.engine.violations(), &self.label);
        ExperimentResult {
            workload: workload.to_string(),
            memory: self.label.clone(),
            ipc: report.ipc(),
            miss_ratio: report.mem.miss_ratio(),
            bus_utilization: report.bus_utilization(),
            report,
            profile: self.profiler.report(),
        }
    }
}

/// [`Prepared`] over whichever memory system [`MemoryKind`] selects.
///
/// The variants differ in size (the SVC carries per-PU caches the ARB
/// doesn't), but exactly one exists per run and it lives on the stack
/// only briefly before the driver destructures it, so boxing would
/// buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum PreparedEngine {
    /// An engine over the final-design SVC.
    Svc(Prepared<SvcSystem>),
    /// An engine over the ARB baseline.
    Arb(Prepared<ArbSystem>),
}

/// Builds the fully attached engine for `memory` — the construction
/// half of [`run_source_with`], shared with resumable drivers.
pub fn prepare_engine(
    memory: MemoryKind,
    engine_cfg: EngineConfig,
    tracer: Tracer,
) -> PreparedEngine {
    let label = memory.label(engine_cfg.num_pus);
    let faults = Faults::from_env(engine_cfg.seed);
    let watchdog = watchdog_from_env();
    let profiler = Profiler::from_env(engine_cfg.num_pus);
    match memory {
        MemoryKind::Svc { kb_per_cache } => {
            let mut cfg = SvcConfig::final_design(engine_cfg.num_pus);
            cfg.geometry = SvcConfig::paper_geometry(kb_per_cache);
            let mut system = SvcSystem::new(cfg);
            system.set_tracer(tracer.clone());
            system.set_faults(faults.clone());
            system.set_profiler(profiler.clone());
            let mut engine = Engine::new(engine_cfg, system);
            engine.set_tracer(tracer);
            engine.set_faults(faults);
            engine.set_watchdog(watchdog);
            engine.set_profiler(profiler.clone());
            PreparedEngine::Svc(Prepared {
                engine,
                profiler,
                watchdog,
                label,
            })
        }
        MemoryKind::Arb {
            hit_cycles,
            cache_kb,
        } => {
            let cfg = ArbConfig::paper(engine_cfg.num_pus, hit_cycles, cache_kb);
            let mut system = ArbSystem::new(cfg);
            system.set_tracer(tracer.clone());
            system.set_profiler(profiler.clone());
            let mut engine = Engine::new(engine_cfg, system);
            engine.set_tracer(tracer);
            engine.set_faults(faults);
            engine.set_watchdog(watchdog);
            engine.set_profiler(profiler.clone());
            PreparedEngine::Arb(Prepared {
                engine,
                profiler,
                watchdog,
                label,
            })
        }
    }
}

/// Writes the text, JSONL, and Chrome-trace sinks for one traced cell
/// into `dir`.
fn write_trace_files(
    dir: &std::path::Path,
    result: &ExperimentResult,
    seed: u64,
    tracer: &Tracer,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let records = tracer.records();
    let stem = format!("{}-{}-{}", result.workload, result.memory, seed);
    report::write_atomic(
        &dir.join(format!("{stem}.log")),
        svc_sim::trace::render_text(&records).as_bytes(),
    )?;
    report::write_atomic(
        &dir.join(format!("{stem}.jsonl")),
        svc_sim::trace::render_jsonl(&records).as_bytes(),
    )?;
    let counters = result
        .profile
        .as_ref()
        .map(profile_counter_series)
        .unwrap_or_default();
    report::write_atomic(
        &dir.join(format!("{stem}.trace.json")),
        svc_sim::trace::render_chrome_with_counters(&records, &stem, &counters).as_bytes(),
    )?;
    Ok(())
}

/// The profiler's interval time series as Chrome-trace counter tracks:
/// derived rates (IPC, bus utilization, squash rate per kilocycle) and
/// raw gauges (outstanding misses, live versions).
pub fn profile_counter_series(p: &ProfileReport) -> Vec<(String, Vec<(u64, f64)>)> {
    let rate = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    let mut ipc = Vec::with_capacity(p.samples.len());
    let mut bus = Vec::with_capacity(p.samples.len());
    let mut squash = Vec::with_capacity(p.samples.len());
    let mut misses = Vec::with_capacity(p.samples.len());
    let mut versions = Vec::with_capacity(p.samples.len());
    let mut prev = None;
    for s in &p.samples {
        let (pc, pi, psq, pb) = prev.unwrap_or((0, 0, 0, 0));
        let dc = s.cycle - pc;
        ipc.push((s.cycle, rate(s.committed_instrs - pi, dc)));
        bus.push((s.cycle, rate(s.bus_busy_cycles - pb, dc)));
        squash.push((s.cycle, rate((s.squashes - psq) * 1000, dc)));
        misses.push((s.cycle, s.outstanding_misses as f64));
        versions.push((s.cycle, s.live_versions as f64));
        prev = Some((s.cycle, s.committed_instrs, s.squashes, s.bus_busy_cycles));
    }
    vec![
        ("ipc".to_string(), ipc),
        ("bus_utilization".to_string(), bus),
        ("squashes_per_kcycle".to_string(), squash),
        ("outstanding_misses".to_string(), misses),
        ("live_versions".to_string(), versions),
    ]
}

/// Runs one SPEC95 benchmark model on `memory` with the default budget
/// and seed.
pub fn run_spec95(bench: Spec95, memory: MemoryKind) -> ExperimentResult {
    run_spec95_with(bench, memory, instruction_budget(), 42)
}

/// Runs one SPEC95 benchmark model with an explicit budget and seed.
pub fn run_spec95_with(
    bench: Spec95,
    memory: MemoryKind,
    budget: u64,
    seed: u64,
) -> ExperimentResult {
    let wl = bench.workload(seed);
    let cfg = EngineConfig {
        num_pus: NUM_PUS,
        predictor: wl.profile().predictor(seed),
        max_instructions: budget,
        seed,
        // Wrong-path work touches warm program data (the hot region),
        // as real wrong-path execution does — not a cold private region.
        garbage_addr_space: wl.profile().hot_set.max(64),
        load_dep_frac: wl.profile().load_dep_frac,
        ..EngineConfig::default()
    };
    run_source(&wl, memory, cfg)
}

/// The seed every paper-artifact binary pins. The workload profiles are
/// calibrated against it (the EXPERIMENTS.md tables — and a couple of
/// thin shape margins — depend on it), so the table/figure binaries
/// ignore the harness's derived seed stream and run every cell at this
/// seed. The derived stream is exercised by the regression gate and the
/// determinism tests instead.
pub const PAPER_SEED: u64 = 42;

/// One cell of a standard experiment grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridJob {
    /// The SPEC95 benchmark model to run.
    pub bench: Spec95,
    /// The memory system to run it on.
    pub memory: MemoryKind,
}

/// The cartesian product `benches × memories`, in row-major order
/// (all memories for the first benchmark, then the next benchmark).
pub fn cross(benches: &[Spec95], memories: &[MemoryKind]) -> Vec<GridJob> {
    let mut jobs = Vec::with_capacity(benches.len() * memories.len());
    for &bench in benches {
        for &memory in memories {
            jobs.push(GridJob { bench, memory });
        }
    }
    jobs
}

/// Env var naming a directory for the grid-cell journal. When set, the
/// standard grids ([`run_paper_grid`] / [`run_derived_grid`]) journal
/// every finished cell there and, on a re-run after an interruption,
/// restart from the completed cells instead of re-simulating them.
pub const GRID_JOURNAL_ENV: &str = "SVC_GRID_JOURNAL";

/// One cell's validation label inside the journal (workload + memory).
fn grid_cell_label(job: &GridJob) -> String {
    format!("{}/{}", job.bench.name(), job.memory.label(NUM_PUS))
}

/// Runs a standard experiment grid, through the cell journal when
/// `SVC_GRID_JOURNAL` is set (separate per-grid subdirectories keyed by
/// grid seed and shape, so one journal directory serves many grids).
fn run_experiment_grid(
    jobs: &[GridJob],
    grid_seed: u64,
    run: impl Fn(&GridJob, u64) -> ExperimentResult + Sync,
) -> harness::GridOutcome<ExperimentResult> {
    if let Some(dir) = std::env::var_os(GRID_JOURNAL_ENV) {
        let sub =
            std::path::PathBuf::from(dir).join(format!("grid-{grid_seed:016x}-{:03}", jobs.len()));
        match harness::GridJournal::open(sub, grid_seed) {
            Ok(journal) => {
                return harness::run_grid_resumable(
                    jobs,
                    grid_seed,
                    harness::threads_from_env(),
                    &journal,
                    grid_cell_label,
                    run,
                )
            }
            // An unusable journal dir degrades to a plain run.
            Err(e) => eprintln!("grid journal unavailable (running without): {e}"),
        }
    }
    harness::run_grid(jobs, grid_seed, run)
}

/// Runs a grid in parallel with every cell pinned to [`PAPER_SEED`]
/// (the paper-artifact path; see [`PAPER_SEED`] for why).
pub fn run_paper_grid(jobs: &[GridJob], budget: u64) -> harness::GridOutcome<ExperimentResult> {
    run_experiment_grid(jobs, PAPER_SEED, |job, _derived| {
        run_spec95_with(job.bench, job.memory, budget, PAPER_SEED)
    })
}

/// Runs a grid in parallel with harness-derived per-job seeds (the
/// path the regression gate and the determinism tests exercise).
pub fn run_derived_grid(
    jobs: &[GridJob],
    grid_seed: u64,
    budget: u64,
) -> harness::GridOutcome<ExperimentResult> {
    run_experiment_grid(jobs, grid_seed, |job, seed| {
        run_spec95_with(job.bench, job.memory, budget, seed)
    })
}

/// [`run_derived_grid`] under the failsafe runner: a panicking cell or
/// one that exhausts the engine's cycle cap ([`RunReport::hit_cycle_limit`],
/// the deterministic notion of a timeout) is retried once at the same
/// seed, then recorded as a [`harness::JobFailure`] while the rest of
/// the grid completes.
pub fn run_derived_grid_failsafe(
    jobs: &[GridJob],
    grid_seed: u64,
    budget: u64,
) -> harness::FailsafeOutcome<ExperimentResult> {
    harness::run_grid_failsafe(
        jobs,
        grid_seed,
        harness::threads_from_env(),
        1,
        |job, seed| {
            let result = run_spec95_with(job.bench, job.memory, budget, seed);
            if result.report.hit_cycle_limit {
                return Err(harness::JobError::Timeout);
            }
            Ok(result)
        },
    )
}

/// Writes both JSON artifacts for a finished grid: the deterministic
/// `results/<name>.json` document (cell results under `seeds[i]`) and
/// the wall-clock entry in the `BENCH_experiments.json` snapshot.
pub fn publish_grid(
    name: &str,
    budget: u64,
    grid_seed: u64,
    seeds: &[u64],
    outcome: &harness::GridOutcome<ExperimentResult>,
) -> std::io::Result<()> {
    assert_eq!(seeds.len(), outcome.results.len(), "one seed per result");
    let runs = outcome
        .results
        .iter()
        .zip(seeds)
        .map(|(r, &s)| report::experiment_result_json(r, s))
        .collect();
    let doc = report::experiment_doc(name, budget, grid_seed, runs);
    report::write_experiment(name, &doc)?;
    publish_profiles(
        name,
        budget,
        grid_seed,
        outcome.results.iter().zip(seeds.iter().copied()),
    )?;
    let m = report::SelfMeasurement::from_reports(
        outcome.results.iter().map(|r| &r.report),
        outcome.wall.as_secs_f64(),
        outcome.threads,
    );
    report::record_snapshot(name, m)?;
    Ok(())
}

/// Writes `results/<name>.profile.json` if any cell carries a
/// cycle-accounting profile (i.e. the grid ran under `SVC_PROFILE`).
/// With the profiler off this writes nothing, so unprofiled artifact
/// regeneration leaves the results directory untouched.
fn publish_profiles<'a>(
    name: &str,
    budget: u64,
    grid_seed: u64,
    cells: impl Iterator<Item = (&'a ExperimentResult, u64)>,
) -> std::io::Result<()> {
    let runs: Vec<report::Json> = cells
        .filter_map(|(r, seed)| {
            r.profile.as_ref().map(|p| {
                report::Json::obj()
                    .set("workload", r.workload.as_str().into())
                    .set("memory", r.memory.as_str().into())
                    .set("seed", seed.into())
                    .set("profile", report::profile_report_json(p))
            })
        })
        .collect();
    if runs.is_empty() {
        return Ok(());
    }
    let doc = report::profile_doc(name, budget, grid_seed, runs);
    report::write_experiment(&format!("{name}.profile"), &doc)?;
    Ok(())
}

/// [`publish_grid`] for a failsafe outcome. Healthy grids write
/// byte-identical `svc-experiments/v1` documents; grids with failed
/// cells write `svc-experiments/v2` with a `failures` array (failed
/// cells are absent from `runs` but identifiable by their seed and
/// grid index in `failures`).
pub fn publish_grid_failsafe(
    name: &str,
    budget: u64,
    grid_seed: u64,
    seeds: &[u64],
    outcome: &harness::FailsafeOutcome<ExperimentResult>,
) -> std::io::Result<()> {
    assert_eq!(seeds.len(), outcome.results.len(), "one seed per cell");
    let runs = outcome
        .results
        .iter()
        .zip(seeds)
        .filter_map(|(r, &s)| r.as_ref().map(|r| report::experiment_result_json(r, s)))
        .collect();
    let doc = report::experiment_doc_failsafe(name, budget, grid_seed, runs, &outcome.failures);
    report::write_experiment(name, &doc)?;
    publish_profiles(
        name,
        budget,
        grid_seed,
        outcome
            .results
            .iter()
            .zip(seeds.iter().copied())
            .filter_map(|(r, s)| r.as_ref().map(|r| (r, s))),
    )?;
    let m = report::SelfMeasurement::from_reports(
        outcome.results.iter().flatten().map(|r| &r.report),
        outcome.wall.as_secs_f64(),
        outcome.threads,
    );
    report::record_snapshot(name, m)?;
    Ok(())
}

/// [`publish_grid`] for paper grids: every seed is [`PAPER_SEED`].
pub fn publish_paper_grid(
    name: &str,
    budget: u64,
    outcome: &harness::GridOutcome<ExperimentResult>,
) -> std::io::Result<()> {
    let seeds = vec![PAPER_SEED; outcome.results.len()];
    publish_grid(name, budget, PAPER_SEED, &seeds, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_is_row_major() {
        let jobs = cross(
            &[Spec95::Ijpeg, Spec95::Perl],
            &[
                MemoryKind::Svc { kb_per_cache: 8 },
                MemoryKind::Svc { kb_per_cache: 16 },
            ],
        );
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].bench, Spec95::Ijpeg);
        assert_eq!(jobs[1].bench, Spec95::Ijpeg);
        assert_eq!(jobs[1].memory, MemoryKind::Svc { kb_per_cache: 16 });
        assert_eq!(jobs[2].bench, Spec95::Perl);
    }

    #[test]
    fn labels() {
        assert_eq!(MemoryKind::Svc { kb_per_cache: 8 }.label(4), "SVC-4x8KB");
        assert_eq!(
            MemoryKind::Arb {
                hit_cycles: 2,
                cache_kb: 32
            }
            .label(4),
            "ARB-2c-32KB"
        );
    }

    #[test]
    fn tiny_run_produces_sane_metrics() {
        let r = run_spec95_with(Spec95::Ijpeg, MemoryKind::Svc { kb_per_cache: 8 }, 5_000, 7);
        assert!(r.ipc > 0.0 && r.ipc < 8.0, "ipc {}", r.ipc);
        assert!(r.miss_ratio >= 0.0 && r.miss_ratio < 1.0);
        assert!(r.bus_utilization >= 0.0 && r.bus_utilization <= 1.0);
        assert!(!r.report.hit_cycle_limit);
    }

    #[test]
    fn arb_run_has_no_bus() {
        let r = run_spec95_with(
            Spec95::Ijpeg,
            MemoryKind::Arb {
                hit_cycles: 1,
                cache_kb: 32,
            },
            5_000,
            7,
        );
        assert_eq!(r.bus_utilization, 0.0);
    }

    #[test]
    fn budget_env_override() {
        // Default without the env var.
        std::env::remove_var("SVC_EXPERIMENT_BUDGET");
        assert_eq!(instruction_budget(), 400_000);
    }
}
