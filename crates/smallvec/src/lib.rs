//! A self-contained, offline stand-in for the `smallvec` crate.
//!
//! The build environment has no crates.io access, so the real smallvec
//! cannot be fetched. This crate implements the subset the workspace's
//! hot paths need: a vector that stores up to `N` elements inline on the
//! stack and only touches the heap when it grows past that. The VCL
//! planning structures (`ReadPlan`/`WritePlan`/`WbackPlan`), per-line
//! snapshot gathers and VOL reconstructions are all bounded by the PU
//! count or the sub-blocks per line in practice, so with a suitable `N`
//! a bus transaction plans without a single allocation.
//!
//! Differences from the real crate, chosen to stay entirely safe:
//!
//! * elements must be `Copy` (every hot-path element here is a small
//!   plain-data tuple), which lets the first push fill the inline array
//!   with copies of the pushed value instead of using `MaybeUninit`;
//! * the API is the subset we use: `new`, `push`, `pop`, `clear`,
//!   `truncate`, `retain`, `extend`, `from_iter`, slice deref, iteration
//!   by value and by reference, and `Vec` interop for tests.

#![forbid(unsafe_code)]

/// A vector holding up to `N` elements inline, spilling to the heap
/// beyond that.
///
/// # Example
///
/// ```
/// use smallvec::SmallVec;
/// let mut v: SmallVec<u32, 4> = SmallVec::new();
/// v.push(1);
/// v.push(2);
/// assert_eq!(&v[..], &[1, 2]);
/// assert!(!v.spilled());
/// v.extend(0..8);
/// assert!(v.spilled());
/// assert_eq!(v.len(), 10);
/// ```
#[derive(Clone)]
pub enum SmallVec<T: Copy, const N: usize> {
    /// No elements yet (the inline buffer has nothing to copy from).
    Empty,
    /// Up to `N` elements in `buf[..len]`; the tail is padding holding
    /// copies of previously pushed values.
    Inline {
        /// Inline storage.
        buf: [T; N],
        /// Number of live elements in `buf`.
        len: usize,
    },
    /// Spilled to the heap.
    Heap(Vec<T>),
}

impl<T: Copy, const N: usize> SmallVec<T, N> {
    /// An empty vector. Allocation-free until it grows past `N`.
    pub const fn new() -> SmallVec<T, N> {
        SmallVec::Empty
    }

    /// Whether the contents live on the heap.
    pub fn spilled(&self) -> bool {
        matches!(self, SmallVec::Heap(_))
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            SmallVec::Empty => &[],
            SmallVec::Inline { buf, len } => &buf[..*len],
            SmallVec::Heap(v) => v,
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            SmallVec::Empty => &mut [],
            SmallVec::Inline { buf, len } => &mut buf[..*len],
            SmallVec::Heap(v) => v,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            SmallVec::Empty => 0,
            SmallVec::Inline { len, .. } => *len,
            SmallVec::Heap(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `value`.
    pub fn push(&mut self, value: T) {
        match self {
            SmallVec::Empty => {
                // `value` fills the whole buffer, so every slot is
                // initialized without needing `T: Default` or unsafe.
                *self = SmallVec::Inline {
                    buf: [value; N],
                    len: 1,
                };
            }
            SmallVec::Inline { buf, len } => {
                if *len < N {
                    buf[*len] = value;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    v.extend_from_slice(&buf[..*len]);
                    v.push(value);
                    *self = SmallVec::Heap(v);
                }
            }
            SmallVec::Heap(v) => v.push(value),
        }
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<T> {
        match self {
            SmallVec::Empty => None,
            SmallVec::Inline { buf, len } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    Some(buf[*len])
                }
            }
            SmallVec::Heap(v) => v.pop(),
        }
    }

    /// Removes every element. A heap spill keeps its capacity, so a
    /// cleared scratch buffer stays allocation-free on reuse.
    pub fn clear(&mut self) {
        match self {
            SmallVec::Empty => {}
            SmallVec::Inline { len, .. } => *len = 0,
            SmallVec::Heap(v) => v.clear(),
        }
    }

    /// Shortens the vector to at most `len` elements.
    pub fn truncate(&mut self, new_len: usize) {
        match self {
            SmallVec::Empty => {}
            SmallVec::Inline { len, .. } => *len = (*len).min(new_len),
            SmallVec::Heap(v) => v.truncate(new_len),
        }
    }

    /// Keeps only the elements `f` accepts, preserving order.
    pub fn retain(&mut self, mut f: impl FnMut(&T) -> bool) {
        match self {
            SmallVec::Empty => {}
            SmallVec::Inline { buf, len } => {
                let mut kept = 0;
                for i in 0..*len {
                    if f(&buf[i]) {
                        buf[kept] = buf[i];
                        kept += 1;
                    }
                }
                *len = kept;
            }
            SmallVec::Heap(v) => v.retain(|x| f(x)),
        }
    }

    /// The elements as a `Vec` (copies; for interop and tests).
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }
}

impl<T: Copy, const N: usize> Default for SmallVec<T, N> {
    fn default() -> SmallVec<T, N> {
        SmallVec::new()
    }
}

impl<T: Copy, const N: usize> core::ops::Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy, const N: usize> core::ops::DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + core::fmt::Debug, const N: usize> core::fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &SmallVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + PartialEq, const N: usize> PartialEq<Vec<T>> for SmallVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq<SmallVec<T, N>> for Vec<T> {
    fn eq(&self, other: &SmallVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + PartialEq, const N: usize, const M: usize> PartialEq<[T; M]> for SmallVec<T, N> {
    fn eq(&self, other: &[T; M]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T: Copy, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> SmallVec<T, N> {
        let mut out = SmallVec::new();
        out.extend(iter);
        out
    }
}

impl<T: Copy, const N: usize> From<Vec<T>> for SmallVec<T, N> {
    fn from(v: Vec<T>) -> SmallVec<T, N> {
        SmallVec::Heap(v)
    }
}

/// By-value iteration (yields copies, front to back).
pub struct IntoIter<T: Copy, const N: usize> {
    vec: SmallVec<T, N>,
    next: usize,
}

impl<T: Copy, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        let out = self.vec.as_slice().get(self.next).copied();
        self.next += 1;
        out
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.vec.len().saturating_sub(self.next);
        (left, Some(left))
    }
}

impl<T: Copy, const N: usize> ExactSizeIterator for IntoIter<T, N> {}

impl<T: Copy, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> IntoIter<T, N> {
        IntoIter { vec: self, next: 0 }
    }
}

impl<'a, T: Copy, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = core::slice::Iter<'a, T>;
    fn into_iter(self) -> core::slice::Iter<'a, T> {
        self.as_slice().iter()
    }
}

/// `smallvec![a, b, c]` — literal construction, mirroring `vec![]`.
#[macro_export]
macro_rules! smallvec {
    () => { $crate::SmallVec::new() };
    ($($x:expr),+ $(,)?) => {{
        let mut out = $crate::SmallVec::new();
        $(out.push($x);)+
        out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: SmallVec<u8, 3> = SmallVec::new();
        assert!(v.is_empty() && !v.spilled());
        v.push(1);
        v.push(2);
        v.push(3);
        assert!(!v.spilled());
        assert_eq!(v.len(), 3);
        assert_eq!(&v[..], &[1, 2, 3]);
        v.push(4);
        assert!(v.spilled());
        assert_eq!(&v[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn pop_clear_truncate() {
        let mut v: SmallVec<u8, 2> = (0..5).collect();
        assert!(v.spilled());
        assert_eq!(v.pop(), Some(4));
        v.truncate(2);
        assert_eq!(&v[..], &[0, 1]);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.pop(), None);
        let mut w: SmallVec<u8, 2> = smallvec![7];
        assert_eq!(w.pop(), Some(7));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn retain_preserves_order() {
        let mut v: SmallVec<u32, 8> = (0..8).collect();
        v.retain(|x| x % 2 == 0);
        assert_eq!(&v[..], &[0, 2, 4, 6]);
        let mut h: SmallVec<u32, 2> = (0..8).collect();
        h.retain(|x| x % 2 == 1);
        assert_eq!(&h[..], &[1, 3, 5, 7]);
    }

    #[test]
    fn sort_and_mutate_through_deref() {
        let mut v: SmallVec<u32, 4> = smallvec![3, 1, 2];
        v.sort_unstable();
        assert_eq!(v, vec![1, 2, 3]);
        v[0] = 9;
        assert_eq!(&v[..], &[9, 2, 3]);
    }

    #[test]
    fn vec_interop_and_eq() {
        let v: SmallVec<u32, 4> = smallvec![1, 2];
        assert_eq!(v, vec![1, 2]);
        assert_eq!(vec![1, 2], v);
        assert_eq!(v, [1, 2]);
        assert_eq!(v.to_vec(), vec![1, 2]);
        let w: SmallVec<u32, 4> = SmallVec::from(vec![1, 2]);
        assert_eq!(v, w);
        assert!(w.spilled());
    }

    #[test]
    fn iteration_by_value_and_reference() {
        let v: SmallVec<u32, 4> = smallvec![1, 2, 3];
        let by_ref: Vec<u32> = (&v).into_iter().copied().collect();
        assert_eq!(by_ref, vec![1, 2, 3]);
        let it = v.into_iter();
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn cleared_spill_keeps_capacity() {
        let mut v: SmallVec<u32, 1> = (0..4).collect();
        v.clear();
        assert!(v.spilled(), "scratch reuse keeps the heap buffer");
        v.push(9);
        assert_eq!(&v[..], &[9]);
    }
}
