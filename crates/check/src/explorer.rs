//! Exhaustive explicit-state exploration of a bounded action alphabet.
//!
//! The checker drives the *real* memory-system implementations — not an
//! abstraction of them — through every interleaving of a small action
//! alphabet (per-PU loads/stores over a handful of addresses and values,
//! head commits, tail squashes). States are deduplicated by a
//! [`StateHasher`] fingerprint over functional state only (cache bits,
//! VOL pointers, data, oracle state — never timing), so two paths that
//! differ only in bus timing converge to one state.
//!
//! Exploration is breadth-first, which makes the first counterexample a
//! shortest one. To keep memory proportional to the number of *states*
//! rather than states × system size, the frontier stores only
//! `(parent, action)` arena entries and each expanded node is
//! reconstructed by replaying its action path from the initial state —
//! sound because the systems are deterministic.
//!
//! Every transition is checked against the reference oracle:
//!
//! * load values must match the oracle exactly;
//! * store violations must name exactly the oracle's victim;
//! * `check_invariants` must stay clean, and `check_post_squash` after
//!   every squash;
//! * the committed view (clone + drain + `architectural`) must equal the
//!   oracle's architectural state at every node.

use std::collections::{HashSet, VecDeque};

use svc_types::{Cycle, ModelCheckable, PuId, StateHasher, TaskId};

use crate::alphabet::{Action, Script};
use crate::designs::{Bounds, DesignId};
use crate::oracle::Oracle;

/// Exploration resource limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of distinct states to visit. Exceeding it sets
    /// [`ExploreOutcome::truncated`]; a truncated run is *not* a pass.
    pub max_states: u64,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_states: 4_000_000,
        }
    }
}

/// What went wrong on a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The implementation refused an access the oracle allows.
    Access,
    /// A load observed a value different from the oracle's.
    LoadValue,
    /// A store's violation outcome (victim task) differed from the
    /// oracle's.
    Victim,
    /// Residual speculative state survived a squash.
    PostSquash,
    /// A structural invariant (`check_invariants`) failed.
    Invariant,
    /// The committed view diverged from the oracle's architectural state.
    CommittedView,
}

impl FailureKind {
    /// Stable lowercase name, used in reports and generated tests.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Access => "access",
            FailureKind::LoadValue => "load-value",
            FailureKind::Victim => "victim",
            FailureKind::PostSquash => "post-squash",
            FailureKind::Invariant => "invariant",
            FailureKind::CommittedView => "committed-view",
        }
    }
}

/// A checked property that failed, with human-readable detail.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which property failed.
    pub kind: FailureKind,
    /// What was expected vs. observed.
    pub detail: String,
}

impl core::fmt::Display for Failure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.detail)
    }
}

/// A failing trace plus the property it fails.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The replayable action trace (already minimized by the front-end
    /// entry points; raw out of the explorer).
    pub script: Script,
    /// The property violated by the final action.
    pub failure: Failure,
}

/// Result of exploring one design's bounded state space.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// The design explored.
    pub design: DesignId,
    /// Distinct states visited (including the initial state).
    pub states: u64,
    /// Transitions examined (including those leading to known states).
    pub transitions: u64,
    /// Longest action path from the initial state to any frontier state.
    pub max_depth: usize,
    /// True if [`Limits::max_states`] stopped the run early. A truncated
    /// run proves nothing and must be treated as a failure by gates.
    pub truncated: bool,
    /// The first (breadth-first shortest) property violation found.
    pub violation: Option<Counterexample>,
}

/// Result of replaying a script against a fresh system.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The design replayed against.
    pub design: DesignId,
    /// Actions that applied cleanly.
    pub executed: usize,
    /// Failure raised by action `executed` (i.e. the first failing
    /// action), if any.
    pub failure: Option<Failure>,
}

/// One point in the explored graph: the implementation, its oracle, and
/// the engine-level dispatch bookkeeping the alphabet depends on.
#[derive(Clone)]
struct Node<M> {
    dut: M,
    oracle: Oracle,
    /// Task held by each PU (`None` once committed with no tasks left).
    running: Vec<Option<TaskId>>,
    /// Next task id to dispatch on commit, bounded by `Bounds::max_tasks`.
    next_task: u64,
    /// Current cycle. Functionally irrelevant (excluded from
    /// fingerprints) but carried so `done_at` bookkeeping matches the
    /// engine's.
    now: Cycle,
}

impl<M: ModelCheckable> Node<M> {
    fn dispatch(&mut self, pu: PuId, task: TaskId) {
        self.running[pu.0] = Some(task);
        self.dut.assign(pu, task);
        self.oracle.assign(pu, task);
    }

    /// PU holding the oldest running task, if any.
    fn head(&self) -> Option<PuId> {
        self.running
            .iter()
            .enumerate()
            .filter_map(|(pu, t)| t.map(|t| (t, PuId(pu))))
            .min()
            .map(|(_, pu)| pu)
    }

    /// PU holding the youngest running task, if any.
    fn youngest(&self) -> Option<PuId> {
        self.running
            .iter()
            .enumerate()
            .filter_map(|(pu, t)| t.map(|t| (t, PuId(pu))))
            .max()
            .map(|(_, pu)| pu)
    }

    fn fingerprint(&self, bounds: &Bounds) -> u64 {
        let mut h = StateHasher::new();
        for t in &self.running {
            h.write_opt_u64(t.map(|t| t.0));
        }
        h.write_u64(self.next_task);
        self.dut.fingerprint(&bounds.addrs, &mut h);
        self.oracle.fingerprint(&bounds.addrs, &mut h);
        h.finish()
    }
}

fn init_node<M: ModelCheckable>(dut: M, bounds: &Bounds) -> Node<M> {
    assert!(
        bounds.max_tasks >= bounds.pus as u64,
        "initial dispatch needs one task per PU"
    );
    let mut node = Node {
        dut,
        oracle: if bounds.flat_oracle {
            Oracle::flat()
        } else {
            Oracle::ideal(bounds.pus)
        },
        running: vec![None; bounds.pus],
        next_task: 0,
        now: Cycle(0),
    };
    for pu in 0..bounds.pus {
        let task = TaskId(node.next_task);
        node.next_task += 1;
        node.dispatch(PuId(pu), task);
    }
    node
}

/// The deterministically-ordered actions enabled in `node`. Exploration
/// order — and therefore the pinned transition counts — follow this
/// enumeration: per-PU loads (address order), per-PU stores
/// (address-major, value-minor), head commit, tail squash.
fn enabled<M: ModelCheckable>(node: &Node<M>, bounds: &Bounds) -> Vec<Action> {
    let mut out = Vec::new();
    for pu in 0..bounds.pus {
        if node.running[pu].is_none() {
            continue;
        }
        for &addr in &bounds.addrs {
            out.push(Action::Load(PuId(pu), addr));
        }
        for &addr in &bounds.addrs {
            for &val in &bounds.values {
                out.push(Action::Store(PuId(pu), addr, val));
            }
        }
    }
    if let Some(pu) = node.head() {
        out.push(Action::Commit(pu));
    }
    if bounds.allow_squash {
        // Squashing the head would be a task abort, not a dependence
        // recovery; the alphabet only squashes a strictly younger task.
        if let (Some(head), Some(tail)) = (node.head(), node.youngest()) {
            if head != tail {
                out.push(Action::Squash(tail));
            }
        }
    }
    out
}

/// Structural invariants plus committed-view conformance. Checked after
/// every action.
fn check_state<M: ModelCheckable + Clone>(node: &Node<M>, bounds: &Bounds) -> Result<(), Failure> {
    let violations = node.dut.check_invariants(node.now);
    if let Some(v) = violations.first() {
        return Err(Failure {
            kind: FailureKind::Invariant,
            detail: format!("{v:?} ({} total)", violations.len()),
        });
    }
    let mut probe = node.dut.clone();
    probe.drain();
    for &addr in &bounds.addrs {
        let got = probe.architectural(addr);
        let want = node.oracle.architectural(addr);
        if got != want {
            return Err(Failure {
                kind: FailureKind::CommittedView,
                detail: format!("addr {} committed view {} want {}", addr.0, got.0, want.0),
            });
        }
    }
    Ok(())
}

/// Applies one action to both the implementation and the oracle,
/// mirroring the engine's dispatch/squash discipline, and checks every
/// per-transition property.
fn apply<M: ModelCheckable + Clone>(
    node: &mut Node<M>,
    action: Action,
    bounds: &Bounds,
) -> Result<(), Failure> {
    node.now += 1;
    let now = node.now;
    match action {
        Action::Load(pu, addr) => {
            let out = node.dut.load(pu, addr, now).map_err(|e| Failure {
                kind: FailureKind::Access,
                detail: format!("load pu={} addr={} refused: {e:?}", pu.0, addr.0),
            })?;
            node.now = node.now.max(out.done_at);
            let want = node.oracle.load(pu, addr, now);
            if out.value != want {
                return Err(Failure {
                    kind: FailureKind::LoadValue,
                    detail: format!(
                        "pu={} addr={} loaded {} want {}",
                        pu.0, addr.0, out.value.0, want.0
                    ),
                });
            }
        }
        Action::Store(pu, addr, val) => {
            let out = node.dut.store(pu, addr, val, now).map_err(|e| Failure {
                kind: FailureKind::Access,
                detail: format!("store pu={} addr={} refused: {e:?}", pu.0, addr.0),
            })?;
            node.now = node.now.max(out.done_at);
            // Victims must agree exactly. Addresses are not compared:
            // the SVC reports the violated *line* (the hardware's
            // granularity) while the oracle reports the word, and the
            // conformance harness likewise compares victims only.
            let want = node.oracle.store(pu, addr, val, now);
            let got_v = out.violation.map(|v| v.victim);
            let want_v = want.map(|v| v.victim);
            if got_v != want_v {
                return Err(Failure {
                    kind: FailureKind::Victim,
                    detail: format!(
                        "store pu={} addr={} violation {:?} want {:?}",
                        pu.0, addr.0, got_v, want_v
                    ),
                });
            }
            if let Some(v) = out.violation {
                recover(node, v.victim)?;
            }
        }
        Action::Commit(pu) => {
            debug_assert_eq!(Some(pu), node.head(), "only the head commits");
            let done = node.dut.commit(pu, now);
            node.now = node.now.max(done);
            node.oracle.commit(pu, now);
            node.running[pu.0] = None;
            if node.next_task < bounds.max_tasks {
                let task = TaskId(node.next_task);
                node.next_task += 1;
                node.dispatch(pu, task);
            }
        }
        Action::Squash(pu) => {
            let task = node.running[pu.0].expect("squash targets a running PU");
            node.dut.squash(pu);
            node.oracle.squash(pu);
            node.running[pu.0] = None;
            post_squash(node, pu)?;
            // Dependence recovery restarts the same task.
            node.dispatch(pu, task);
        }
    }
    check_state(node, bounds)
}

fn post_squash<M: ModelCheckable>(node: &Node<M>, pu: PuId) -> Result<(), Failure> {
    let residue = node.dut.check_post_squash(pu, node.now);
    if let Some(v) = residue.first() {
        return Err(Failure {
            kind: FailureKind::PostSquash,
            detail: format!("pu={}: {v:?} ({} total)", pu.0, residue.len()),
        });
    }
    Ok(())
}

/// Squashes the violated task and everything younger (squashes are
/// contiguous from the tail), then re-dispatches the same tasks in
/// program order — byte-for-byte the discipline of the conformance
/// harness's `run_lockstep`.
fn recover<M: ModelCheckable + Clone>(node: &mut Node<M>, victim: TaskId) -> Result<(), Failure> {
    let mut to_squash: Vec<(PuId, TaskId)> = node
        .running
        .iter()
        .enumerate()
        .filter_map(|(pu, t)| t.map(|t| (PuId(pu), t)))
        .filter(|&(_, t)| t >= victim)
        .collect();
    to_squash.sort_by_key(|&(_, t)| core::cmp::Reverse(t));
    for &(pu, _) in &to_squash {
        node.dut.squash(pu);
        node.oracle.squash(pu);
        node.running[pu.0] = None;
        post_squash(node, pu)?;
    }
    let mut tasks: Vec<TaskId> = to_squash.iter().map(|&(_, t)| t).collect();
    tasks.sort();
    for (&(pu, _), &task) in to_squash.iter().zip(&tasks) {
        node.dispatch(pu, task);
    }
    Ok(())
}

/// Reconstructs the node reached by `actions` from the initial state.
/// Panics if the path was not previously validated — exploration only
/// replays paths it has already applied successfully.
fn replay_path<M: ModelCheckable + Clone>(dut: M, bounds: &Bounds, actions: &[Action]) -> Node<M> {
    let mut node = init_node(dut, bounds);
    for &action in actions {
        apply(&mut node, action, bounds).expect("previously-validated path replays cleanly");
    }
    node
}

/// The action path from the initial state to arena entry `id`.
fn path_of(parents: &[(u32, Action)], mut id: u32) -> Vec<Action> {
    let mut path = Vec::new();
    while id != 0 {
        let (parent, action) = parents[id as usize];
        path.push(action);
        id = parent;
    }
    path.reverse();
    path
}

/// Breadth-first exhaustive exploration. See the module docs for the
/// state representation and per-transition checks.
pub(crate) fn explore_generic<M: ModelCheckable + Clone>(
    design: DesignId,
    mk: &dyn Fn() -> M,
    bounds: &Bounds,
    limits: &Limits,
) -> ExploreOutcome {
    let root = init_node(mk(), bounds);
    let mut outcome = ExploreOutcome {
        design,
        states: 1,
        transitions: 0,
        max_depth: 0,
        truncated: false,
        violation: None,
    };
    if let Err(failure) = check_state(&root, bounds) {
        outcome.violation = Some(Counterexample {
            script: Script {
                design,
                actions: Vec::new(),
            },
            failure,
        });
        return outcome;
    }
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(root.fingerprint(bounds));
    // Arena of (parent index, incoming action); entry 0 is the root with
    // a dummy action that is never read.
    let mut parents: Vec<(u32, Action)> = vec![(0, Action::Commit(PuId(0)))];
    let mut frontier: VecDeque<(u32, usize)> = VecDeque::new();
    frontier.push_back((0, 0));
    'bfs: while let Some((id, depth)) = frontier.pop_front() {
        let path = path_of(&parents, id);
        let node = replay_path(mk(), bounds, &path);
        for action in enabled(&node, bounds) {
            outcome.transitions += 1;
            let mut succ = node.clone();
            if let Err(failure) = apply(&mut succ, action, bounds) {
                let mut actions = path.clone();
                actions.push(action);
                outcome.states = visited.len() as u64;
                outcome.violation = Some(Counterexample {
                    script: Script { design, actions },
                    failure,
                });
                return outcome;
            }
            if visited.insert(succ.fingerprint(bounds)) {
                outcome.max_depth = outcome.max_depth.max(depth + 1);
                if visited.len() as u64 > limits.max_states {
                    outcome.truncated = true;
                    break 'bfs;
                }
                parents.push((id, action));
                frontier.push_back(((parents.len() - 1) as u32, depth + 1));
            }
        }
    }
    outcome.states = visited.len() as u64;
    outcome
}

/// A deterministic pseudo-random walk of enabled actions: a *deep*
/// probe through the same alphabet the breadth-first search covers
/// exhaustively but shallowly. If an action fails a property it is
/// still included as the final action, so replaying the returned script
/// reproduces the failure.
pub(crate) fn walk_generic<M: ModelCheckable + Clone>(
    design: DesignId,
    dut: M,
    bounds: &Bounds,
    seed: u64,
    steps: usize,
) -> Script {
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut node = init_node(dut, bounds);
    let mut actions = Vec::new();
    for _ in 0..steps {
        let enabled_now = enabled(&node, bounds);
        if enabled_now.is_empty() {
            break;
        }
        // xorshift64: cheap, deterministic, dependency-free.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let action = enabled_now[(rng % enabled_now.len() as u64) as usize];
        actions.push(action);
        if apply(&mut node, action, bounds).is_err() {
            break;
        }
    }
    Script { design, actions }
}

/// Replays a script, validating enabledness as it goes. Returns `Err`
/// for malformed scripts (action against a PU with no task, commit of a
/// non-head PU, ...) and `Ok` with an optional [`Failure`] otherwise.
pub(crate) fn replay_generic<M: ModelCheckable + Clone>(
    design: DesignId,
    dut: M,
    bounds: &Bounds,
    actions: &[Action],
) -> Result<ReplayOutcome, String> {
    let mut node = init_node(dut, bounds);
    if let Err(failure) = check_state(&node, bounds) {
        return Ok(ReplayOutcome {
            design,
            executed: 0,
            failure: Some(failure),
        });
    }
    for (i, &action) in actions.iter().enumerate() {
        if !enabled(&node, bounds).contains(&action) {
            return Err(format!(
                "action {i} ({action}) is not enabled at this point"
            ));
        }
        if let Err(failure) = apply(&mut node, action, bounds) {
            return Ok(ReplayOutcome {
                design,
                executed: i,
                failure: Some(failure),
            });
        }
    }
    Ok(ReplayOutcome {
        design,
        executed: actions.len(),
        failure: None,
    })
}
