//! Exhaustive explicit-state model checking for the repo's memory
//! systems.
//!
//! The checker drives the **real implementations** — the SVC designs
//! ([`svc::SvcSystem`]), the ARB baseline ([`svc_arb::ArbSystem`]) and
//! the SMP coherence baseline ([`svc_coherence::SmpVersioned`]) —
//! through *every* interleaving of a bounded action alphabet (per-PU
//! loads/stores over a few addresses and values, head commits, tail
//! squashes), deduplicating states by a functional-state fingerprint
//! and checking, at every transition:
//!
//! * load-value and violation-victim agreement with the reference
//!   oracle ([`svc::IdealMemory`], or a flat sequential map for SMP);
//! * the structural invariant sweep (`check_invariants`) and
//!   post-squash residue check;
//! * committed-view conformance: clone + drain + `architectural` must
//!   equal the oracle's architectural state.
//!
//! Violations come back as minimized, replayable [`Script`]s;
//! [`emit::emit_test`] turns one into a standalone regression test. The
//! seeded mutations of [`svc_types::mutate`] (enabled via `SVC_MUTATE`)
//! prove the checker actually catches protocol bugs — see
//! `tests/mutation_kill.rs`.
//!
//! Entry points: [`explore_design`] (exhaustive search),
//! [`replay_design`] / [`replay_script_str`] (trace replay), and the
//! `svc-check` binary in the root crate.

pub mod alphabet;
pub mod designs;
pub mod emit;
pub mod explorer;
pub mod minimize;
mod oracle;

pub use alphabet::{parse_action, Action, Script};
pub use designs::{
    design_for_mutation, explore_design, random_walk, replay_design, Bounds, DesignId, ALL_DESIGNS,
};
pub use explorer::{Counterexample, ExploreOutcome, Failure, FailureKind, Limits, ReplayOutcome};

/// Parses and replays a textual script. See [`Script::parse`] and
/// [`replay_design`].
pub fn replay_script_str(text: &str) -> Result<ReplayOutcome, String> {
    let script = Script::parse(text)?;
    replay_design(script.design, &script.actions)
}
