//! Counterexample minimization by greedy delta-debugging.
//!
//! Breadth-first search already yields a shortest *path* to a failing
//! transition, but that path can still carry actions irrelevant to the
//! failure (loads that only pad the interleaving, stores to unrelated
//! addresses). Minimization repeatedly drops single actions, keeping a
//! candidate only if it still fails: the result is 1-minimal — removing
//! any one remaining action makes the trace pass or become malformed.
//!
//! Dropping an action can make a later one disabled (e.g. removing the
//! commit that re-dispatched a PU). Such candidates replay as `Err` and
//! are simply rejected — the final trace is always well-formed.

use crate::alphabet::Action;
use crate::designs::{replay_design, DesignId};

/// True if `actions` is well-formed for `design` and ends in a failure.
fn still_fails(design: DesignId, actions: &[Action]) -> bool {
    matches!(replay_design(design, actions), Ok(out) if out.failure.is_some())
}

/// Greedily minimizes a failing trace. The input must fail; the output
/// fails and is 1-minimal.
pub fn minimize(design: DesignId, actions: &[Action]) -> Vec<Action> {
    debug_assert!(
        still_fails(design, actions),
        "minimize needs a failing trace"
    );
    let mut best: Vec<Action> = actions.to_vec();
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best.len() {
            let mut candidate = best.clone();
            candidate.remove(i);
            if still_fails(design, &candidate) {
                best = candidate;
                improved = true;
            } else {
                i += 1;
            }
        }
        if !improved {
            return best;
        }
    }
}
