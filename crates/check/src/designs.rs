//! The checkable designs, their bounded alphabets, and the dispatch
//! front-ends (`explore_design` / `replay_design`).
//!
//! Each design gets a pinned small-state configuration: geometries are
//! sized so that every address in the alphabet maps to its own set (no
//! replacement pressure — capacity effects are timing, not protocol, and
//! exercising them would only blow up the state space), and latencies
//! are the repo's defaults. The bounds are part of the checked artifact:
//! `results/check.json` pins the explored state and transition counts
//! for these exact configurations, so changing a bound here is a
//! baseline update.

use svc::{SvcConfig, SvcSystem};
use svc_arb::{ArbConfig, ArbSystem};
use svc_coherence::{SmpConfig, SmpVersioned};
use svc_mem::{CacheGeometry, MemTiming};
use svc_types::{Addr, Mutation, Word};

use crate::alphabet::{Action, Script};
use crate::explorer::{
    explore_generic, replay_generic, walk_generic, ExploreOutcome, Limits, ReplayOutcome,
};
use crate::minimize::minimize;

/// A memory-system design the checker can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignId {
    /// SVC §3.2 base design (one-word lines, eager commit).
    SvcBase,
    /// SVC §3.5 ECS design (lazy commit, stale reuse, arch retention).
    SvcEcs,
    /// SVC §3.8 final design (multi-word lines, hybrid update protocol).
    SvcFinal,
    /// The ARB baseline (shared speculative buffer).
    Arb,
    /// The SMP/MRSW invalidation-coherence baseline (non-speculative).
    Smp,
}

/// All checkable designs, in report order.
pub const ALL_DESIGNS: [DesignId; 5] = [
    DesignId::SvcBase,
    DesignId::SvcEcs,
    DesignId::SvcFinal,
    DesignId::Arb,
    DesignId::Smp,
];

impl DesignId {
    /// Stable name used in scripts, reports and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            DesignId::SvcBase => "svc-base",
            DesignId::SvcEcs => "svc-ecs",
            DesignId::SvcFinal => "svc-final",
            DesignId::Arb => "arb",
            DesignId::Smp => "smp",
        }
    }

    /// Inverse of [`DesignId::name`].
    pub fn from_name(name: &str) -> Option<DesignId> {
        ALL_DESIGNS.into_iter().find(|d| d.name() == name)
    }

    /// The pinned alphabet bounds for this design.
    pub fn bounds(self) -> Bounds {
        let values = vec![Word(1), Word(2)];
        match self {
            DesignId::SvcBase | DesignId::SvcEcs => Bounds {
                // One-word lines: the two addresses are two lines in two
                // sets, exercising cross-line VOL threading.
                pus: 2,
                addrs: vec![Addr(0), Addr(1)],
                values,
                max_tasks: 3,
                allow_squash: true,
                flat_oracle: false,
            },
            DesignId::SvcFinal => Bounds {
                // Addr 0 and 1 share a 4-word line (distinct sub-blocks),
                // exercising the per-sub-block L/S masks and partial-fill
                // combining that only the multi-word-line design has.
                pus: 2,
                addrs: vec![Addr(0), Addr(1)],
                values,
                max_tasks: 3,
                allow_squash: true,
                flat_oracle: false,
            },
            DesignId::Arb => Bounds {
                // Three PUs: the ARB's shadowing rule (an intervening
                // version shields younger loads) is only observable with
                // at least three concurrent tasks.
                pus: 3,
                addrs: vec![Addr(0), Addr(1)],
                values,
                max_tasks: 3,
                allow_squash: true,
                flat_oracle: false,
            },
            DesignId::Smp => Bounds {
                // Non-speculative: squash would release the PU without
                // undoing state, which is the documented timing-shim
                // hole, not a protocol property worth exploring.
                pus: 2,
                addrs: vec![Addr(0), Addr(1)],
                values,
                max_tasks: 4,
                allow_squash: false,
                flat_oracle: true,
            },
        }
    }
}

/// The design whose bounded exploration exposes each seeded mutation
/// (`SVC_MUTATE=<site>`). Used by the mutation-kill harness and the
/// `svc-check mutations` campaign.
pub fn design_for_mutation(m: Mutation) -> DesignId {
    match m {
        // Needs lazy commits: committed lines that keep their L bits
        // raise spurious violations on later stores.
        Mutation::CommitKeepsLoadBits => DesignId::SvcEcs,
        // Squash residue on speculative lines: caught by the
        // post-squash sweep on any SVC design.
        Mutation::SquashKeepsLine => DesignId::SvcBase,
        // A load that never sets its L bit misses violations the oracle
        // reports.
        Mutation::LoadSkipsLBit => DesignId::SvcBase,
        // The hybrid update-invalidate protocol of the final design is
        // where a skipped invalidation leaves stale copies readable.
        Mutation::StoreSkipsInvalidation => DesignId::SvcFinal,
        // VOL splice order matters once multiple copies of a line are
        // threaded; the final design exercises pointer rewrites.
        Mutation::VolSpliceBackwards => DesignId::SvcFinal,
        // ARB-only: ignoring the shadow of an intervening store yields
        // a victim the oracle says is shielded.
        Mutation::ArbIgnoresShadow => DesignId::Arb,
        // SMP-only: dropped invalidations leave stale clean copies.
        Mutation::SmpDropInvalidate => DesignId::Smp,
    }
}

/// The bounded alphabet the explorer enumerates for one design.
#[derive(Debug, Clone)]
pub struct Bounds {
    /// Number of processing units.
    pub pus: usize,
    /// Addresses loads and stores range over.
    pub addrs: Vec<Addr>,
    /// Values stores range over.
    pub values: Vec<Word>,
    /// Total tasks dispatched across the run (ids `0..max_tasks`).
    pub max_tasks: u64,
    /// Whether the tail-squash action is in the alphabet.
    pub allow_squash: bool,
    /// Whether the reference oracle is the flat sequential map (SMP)
    /// rather than the ideal versioning memory.
    pub flat_oracle: bool,
}

fn svc_system(design: DesignId) -> SvcSystem {
    let pus = design.bounds().pus;
    let mut cfg = match design {
        DesignId::SvcBase => SvcConfig::base(pus),
        DesignId::SvcEcs => SvcConfig::ecs(pus),
        DesignId::SvcFinal => SvcConfig::final_design(pus),
        _ => unreachable!("not an SVC design"),
    };
    cfg.geometry = match design {
        // 2 sets x 2 ways, 4-word lines, per-word sub-blocks: addrs 0/1
        // share line 0 (set 0), addr 4 is line 1 (set 1).
        DesignId::SvcFinal => CacheGeometry::new(2, 2, 4, 1),
        // One-word lines as the pedagogical designs assume.
        _ => CacheGeometry::word_lines(4, 2),
    };
    SvcSystem::new(cfg)
}

fn arb_system() -> ArbSystem {
    ArbSystem::new(ArbConfig {
        num_pus: 3,
        rows: 8,
        hit_cycles: 1,
        memory_cycles: 10,
        cache_geometry: CacheGeometry::new(4, 1, 4, 4),
    })
}

fn smp_system() -> SmpVersioned {
    SmpVersioned::new(SmpConfig {
        num_pus: 2,
        geometry: CacheGeometry::word_lines(4, 2),
        timing: MemTiming::PAPER,
        exclusive: true,
    })
}

/// Exhaustively explores `design`'s bounded state space. Counterexamples
/// are minimized before being returned.
pub fn explore_design(design: DesignId, limits: &Limits) -> ExploreOutcome {
    let bounds = design.bounds();
    let mut outcome = match design {
        DesignId::SvcBase | DesignId::SvcEcs | DesignId::SvcFinal => {
            explore_generic(design, &|| svc_system(design), &bounds, limits)
        }
        DesignId::Arb => explore_generic(design, &arb_system, &bounds, limits),
        DesignId::Smp => explore_generic(design, &smp_system, &bounds, limits),
    };
    if let Some(cx) = outcome.violation.as_mut() {
        cx.script.actions = minimize(design, &cx.script.actions);
        // Re-derive the failure from the minimized trace (dropping
        // actions can change which property fires first).
        if let Ok(replay) = replay_design(design, &cx.script.actions) {
            if let Some(failure) = replay.failure {
                cx.failure = failure;
            }
        }
    }
    outcome
}

/// Replays an action sequence against a fresh instance of `design`.
/// `Err` means the script itself is malformed (an action was not
/// enabled); a property violation is reported in the `Ok` outcome.
pub fn replay_design(design: DesignId, actions: &[Action]) -> Result<ReplayOutcome, String> {
    let bounds = design.bounds();
    match design {
        DesignId::SvcBase | DesignId::SvcEcs | DesignId::SvcFinal => {
            replay_generic(design, svc_system(design), &bounds, actions)
        }
        DesignId::Arb => replay_generic(design, arb_system(), &bounds, actions),
        DesignId::Smp => replay_generic(design, smp_system(), &bounds, actions),
    }
}

/// A deterministic pseudo-random walk of enabled actions through
/// `design`'s bounded alphabet — a deep probe complementing the
/// exhaustive-but-shallow breadth-first search. The walk stops early at
/// a terminal state (all tasks committed) or at the first property
/// failure (the failing action is kept, so replaying the script
/// reproduces it).
pub fn random_walk(design: DesignId, seed: u64, steps: usize) -> Script {
    let bounds = design.bounds();
    match design {
        DesignId::SvcBase | DesignId::SvcEcs | DesignId::SvcFinal => {
            walk_generic(design, svc_system(design), &bounds, seed, steps)
        }
        DesignId::Arb => walk_generic(design, arb_system(), &bounds, seed, steps),
        DesignId::Smp => walk_generic(design, smp_system(), &bounds, seed, steps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for d in ALL_DESIGNS {
            assert_eq!(DesignId::from_name(d.name()), Some(d));
        }
        assert_eq!(DesignId::from_name("nope"), None);
    }

    #[test]
    fn bounds_are_self_consistent() {
        for d in ALL_DESIGNS {
            let b = d.bounds();
            assert!(b.pus >= 2, "need concurrency to check anything");
            assert!(b.max_tasks >= b.pus as u64);
            assert!(!b.addrs.is_empty() && !b.values.is_empty());
        }
    }

    #[test]
    fn random_walks_are_deterministic_and_clean() {
        for d in ALL_DESIGNS {
            let a = random_walk(d, 0xC0FFEE, 12);
            let b = random_walk(d, 0xC0FFEE, 12);
            assert_eq!(a, b, "{}: walk is not deterministic", d.name());
            let out = replay_design(d, &a.actions).expect("walk actions are enabled");
            assert!(out.failure.is_none(), "{}: {:?}", d.name(), out.failure);
        }
    }

    #[test]
    fn empty_replay_is_clean() {
        for d in ALL_DESIGNS {
            let out = replay_design(d, &[]).unwrap();
            assert!(out.failure.is_none(), "{}: {:?}", d.name(), out.failure);
        }
    }
}
