//! The bounded action alphabet and the replayable trace format.
//!
//! A model-checking run explores interleavings of [`Action`]s — the
//! engine-level operations a processing unit can issue against a
//! [`svc_types::VersionedMemory`]. A [`Script`] is a serialised sequence
//! of actions plus the design it targets; counterexamples are emitted as
//! scripts so they can be replayed (`svc-check replay`), minimized, and
//! turned into regression tests.
//!
//! The textual format is deliberately trivial — one action per line,
//! `key=value` operands, `#` comments — so scripts stay readable in test
//! sources and diffs:
//!
//! ```text
//! design: svc-base
//! # task 1 loads before task 0 stores: violation on the store
//! load pu=1 addr=0
//! store pu=0 addr=0 val=1
//! ```

use core::fmt;

use svc_types::{Addr, PuId, Word};

use crate::designs::DesignId;

/// One engine-level operation against the memory system under test.
///
/// `Commit` and `Squash` name a PU, not a task: the checker only ever
/// commits the PU holding the head (oldest) task and only ever squashes
/// the PU holding the youngest, matching the multiscalar engine's
/// head-commit / tail-squash discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// `pu` loads `addr`.
    Load(PuId, Addr),
    /// `pu` stores `val` to `addr`.
    Store(PuId, Addr, Word),
    /// `pu` (holding the head task) commits and, if the task budget
    /// allows, is immediately re-dispatched with the next task.
    Commit(PuId),
    /// `pu` (holding the youngest running task) is squashed and
    /// re-dispatched with the same task id, mirroring a dependence
    /// recovery restart.
    Squash(PuId),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Load(pu, addr) => write!(f, "load pu={} addr={}", pu.0, addr.0),
            Action::Store(pu, addr, val) => {
                write!(f, "store pu={} addr={} val={}", pu.0, addr.0, val.0)
            }
            Action::Commit(pu) => write!(f, "commit pu={}", pu.0),
            Action::Squash(pu) => write!(f, "squash pu={}", pu.0),
        }
    }
}

/// Parses one action line (no comments, already trimmed).
pub fn parse_action(line: &str) -> Result<Action, String> {
    let mut parts = line.split_whitespace();
    let kind = parts.next().ok_or_else(|| "empty action".to_string())?;
    let mut fields: Vec<(&str, u64)> = Vec::new();
    for part in parts {
        let (key, val) = part
            .split_once('=')
            .ok_or_else(|| format!("malformed operand {part:?} in {line:?}"))?;
        let val: u64 = val
            .parse()
            .map_err(|_| format!("non-numeric operand {part:?} in {line:?}"))?;
        fields.push((key, val));
    }
    let field = |key: &str| -> Result<u64, String> {
        fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("action {line:?} is missing {key}="))
    };
    match kind {
        "load" => Ok(Action::Load(
            PuId(field("pu")? as usize),
            Addr(field("addr")?),
        )),
        "store" => Ok(Action::Store(
            PuId(field("pu")? as usize),
            Addr(field("addr")?),
            Word(field("val")?),
        )),
        "commit" => Ok(Action::Commit(PuId(field("pu")? as usize))),
        "squash" => Ok(Action::Squash(PuId(field("pu")? as usize))),
        other => Err(format!("unknown action kind {other:?}")),
    }
}

/// A replayable trace: the design under test plus the action sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Script {
    /// Which memory system (and bounds) the trace targets.
    pub design: DesignId,
    /// The actions, in issue order.
    pub actions: Vec<Action>,
}

impl Script {
    /// Serialises the script in the textual trace format. The output
    /// round-trips through [`Script::parse`].
    pub fn render(&self) -> String {
        let mut out = format!("design: {}\n", self.design.name());
        for action in &self.actions {
            out.push_str(&action.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses the textual trace format. Blank lines and `#` comments are
    /// ignored; the `design:` header may appear anywhere but is required.
    pub fn parse(text: &str) -> Result<Script, String> {
        let mut design = None;
        let mut actions = Vec::new();
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("design:") {
                let name = rest.trim();
                design = Some(
                    DesignId::from_name(name).ok_or_else(|| format!("unknown design {name:?}"))?,
                );
            } else {
                actions.push(parse_action(line)?);
            }
        }
        Ok(Script {
            design: design.ok_or_else(|| "script is missing a `design:` header".to_string())?,
            actions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_round_trip() {
        let actions = [
            Action::Load(PuId(0), Addr(4)),
            Action::Store(PuId(1), Addr(0), Word(2)),
            Action::Commit(PuId(0)),
            Action::Squash(PuId(1)),
        ];
        for a in actions {
            assert_eq!(parse_action(&a.to_string()).unwrap(), a);
        }
    }

    #[test]
    fn scripts_round_trip() {
        let script = Script {
            design: DesignId::SvcFinal,
            actions: vec![
                Action::Load(PuId(1), Addr(0)),
                Action::Store(PuId(0), Addr(0), Word(1)),
            ],
        };
        assert_eq!(Script::parse(&script.render()).unwrap(), script);
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let text = "# a counterexample\n\ndesign: arb\n  load pu=0 addr=1\n# trailing\n";
        let script = Script::parse(text).unwrap();
        assert_eq!(script.design, DesignId::Arb);
        assert_eq!(script.actions, vec![Action::Load(PuId(0), Addr(1))]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Script::parse("load pu=0 addr=0\n").is_err(), "no design");
        assert!(Script::parse("design: svc-base\nfrob pu=0\n").is_err());
        assert!(Script::parse("design: svc-base\nload pu=0\n").is_err());
        assert!(Script::parse("design: nope\n").is_err());
    }
}
