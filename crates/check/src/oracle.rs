//! Reference semantics the design under test is checked against.
//!
//! Speculative designs (SVC variants, ARB) are compared against
//! [`svc::IdealMemory`] — the repo's exact versioning oracle: load values,
//! violation victims, and the committed view must all agree. The SMP
//! baseline is non-speculative (stores are globally ordered as they
//! execute), so its oracle is a flat address map updated in program
//! order.

use std::collections::HashMap;

use svc::IdealMemory;
use svc_types::{
    Addr, Cycle, ModelCheckable, PuId, StateHasher, TaskId, VersionedMemory, Violation, Word,
};

/// The reference model a design is checked against.
// The size gap between the variants is fine: oracles live inside BFS
// nodes that clone constantly, and boxing the *common* (Ideal) variant
// would put an allocation on that hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum Oracle {
    /// Exact speculative-versioning semantics.
    Ideal(IdealMemory),
    /// Sequential flat memory: every store is immediately architectural.
    Flat(HashMap<Addr, Word>),
}

impl Oracle {
    pub(crate) fn ideal(num_pus: usize) -> Oracle {
        Oracle::Ideal(IdealMemory::new(num_pus, 1))
    }

    pub(crate) fn flat() -> Oracle {
        Oracle::Flat(HashMap::new())
    }

    pub(crate) fn assign(&mut self, pu: PuId, task: TaskId) {
        if let Oracle::Ideal(m) = self {
            m.assign(pu, task);
        }
    }

    /// The value a load by `pu` must observe.
    pub(crate) fn load(&mut self, pu: PuId, addr: Addr, now: Cycle) -> Word {
        match self {
            Oracle::Ideal(m) => m.load(pu, addr, now).expect("oracle never stalls").value,
            Oracle::Flat(mem) => mem.get(&addr).copied().unwrap_or(Word::ZERO),
        }
    }

    /// The violation (if any) a store by `pu` must raise.
    pub(crate) fn store(
        &mut self,
        pu: PuId,
        addr: Addr,
        value: Word,
        now: Cycle,
    ) -> Option<Violation> {
        match self {
            Oracle::Ideal(m) => {
                m.store(pu, addr, value, now)
                    .expect("oracle never stalls")
                    .violation
            }
            Oracle::Flat(mem) => {
                mem.insert(addr, value);
                None
            }
        }
    }

    pub(crate) fn commit(&mut self, pu: PuId, now: Cycle) {
        if let Oracle::Ideal(m) = self {
            m.commit(pu, now);
        }
    }

    pub(crate) fn squash(&mut self, pu: PuId) {
        if let Oracle::Ideal(m) = self {
            m.squash(pu);
        }
    }

    /// The committed (architectural) value for `addr`.
    pub(crate) fn architectural(&self, addr: Addr) -> Word {
        match self {
            Oracle::Ideal(m) => m.architectural(addr),
            Oracle::Flat(mem) => mem.get(&addr).copied().unwrap_or(Word::ZERO),
        }
    }

    pub(crate) fn fingerprint(&self, addrs: &[Addr], h: &mut StateHasher) {
        match self {
            Oracle::Ideal(m) => m.fingerprint(addrs, h),
            Oracle::Flat(mem) => {
                for &addr in addrs {
                    h.write_opt_u64(mem.get(&addr).map(|v| v.0));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_oracle_is_sequential() {
        let mut o = Oracle::flat();
        o.assign(PuId(0), TaskId(0));
        assert_eq!(o.load(PuId(0), Addr(0), Cycle(0)), Word::ZERO);
        assert!(o.store(PuId(0), Addr(0), Word(7), Cycle(1)).is_none());
        assert_eq!(o.load(PuId(1), Addr(0), Cycle(2)), Word(7));
        assert_eq!(o.architectural(Addr(0)), Word(7));
    }

    #[test]
    fn ideal_oracle_detects_violations() {
        let mut o = Oracle::ideal(2);
        o.assign(PuId(0), TaskId(0));
        o.assign(PuId(1), TaskId(1));
        o.load(PuId(1), Addr(0), Cycle(0));
        let v = o.store(PuId(0), Addr(0), Word(1), Cycle(1)).unwrap();
        assert_eq!(v.victim, TaskId(1));
    }

    #[test]
    fn fingerprints_track_state() {
        let addrs = [Addr(0), Addr(1)];
        let mut a = Oracle::flat();
        let b = a.clone();
        a.store(PuId(0), Addr(1), Word(3), Cycle(0));
        let mut ha = StateHasher::new();
        let mut hb = StateHasher::new();
        a.fingerprint(&addrs, &mut ha);
        b.fingerprint(&addrs, &mut hb);
        assert_ne!(ha.finish(), hb.finish());
    }
}
