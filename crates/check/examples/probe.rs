//! Dev probe: per-design state counts and wall time. Not part of the
//! shipped tooling (`svc-check report` is); kept as an example so bound
//! tuning is repeatable.

use std::time::Instant;

use svc_check::{explore_design, Limits, ALL_DESIGNS};

fn main() {
    for design in ALL_DESIGNS {
        let start = Instant::now();
        let out = explore_design(design, &Limits::default());
        println!(
            "{:10} states={:8} transitions={:9} depth={:3} truncated={} violation={} ({:.2?})",
            design.name(),
            out.states,
            out.transitions,
            out.max_depth,
            out.truncated,
            out.violation.is_some(),
            start.elapsed()
        );
        if let Some(cx) = &out.violation {
            println!("--- {}\n{}", cx.failure, cx.script.render());
        }
    }
}
