//! Tier-1 exploration tests: every design is searched with zero property
//! violations and byte-deterministic state/transition counts across two
//! independent runs (the determinism the `results/check.json` pin relies
//! on).
//!
//! Debug builds (the default `cargo test`) explore a bounded prefix of
//! the state space — full exhaustion in an unoptimized build would take
//! minutes per design. Release builds (`cargo test --release`, the CI
//! model-check step, and the `regress` gate) remove the cap and require
//! exhaustion.

use svc_check::{explore_design, DesignId, ExploreOutcome, Limits, ALL_DESIGNS};

fn limits() -> Limits {
    if cfg!(debug_assertions) {
        // Bounded smoke in debug: still thousands of real states per
        // design through the real implementations.
        Limits { max_states: 4_000 }
    } else {
        Limits::default()
    }
}

fn explore(design: DesignId) -> ExploreOutcome {
    let out = explore_design(design, &limits());
    if cfg!(not(debug_assertions)) {
        assert!(
            !out.truncated,
            "{}: exploration truncated at {} states — raise Limits or shrink bounds",
            design.name(),
            out.states
        );
    }
    if let Some(cx) = &out.violation {
        panic!(
            "{}: property violation ({})\ncounterexample:\n{}",
            design.name(),
            cx.failure,
            cx.script.render()
        );
    }
    out
}

fn check_design(design: DesignId) {
    let a = explore(design);
    let b = explore(design);
    assert_eq!(
        (a.states, a.transitions, a.max_depth),
        (b.states, b.transitions, b.max_depth),
        "{}: exploration is not deterministic",
        design.name()
    );
    // A vacuous exploration (nothing enabled) would pass every check;
    // insist the graph actually has depth.
    assert!(
        a.max_depth >= 3,
        "{}: suspiciously shallow exploration (depth {})",
        design.name(),
        a.max_depth
    );
}

#[test]
fn svc_base_is_clean_and_deterministic() {
    check_design(DesignId::SvcBase);
}

#[test]
fn svc_ecs_is_clean_and_deterministic() {
    check_design(DesignId::SvcEcs);
}

#[test]
fn svc_final_is_clean_and_deterministic() {
    check_design(DesignId::SvcFinal);
}

#[test]
fn arb_is_clean_and_deterministic() {
    check_design(DesignId::Arb);
}

#[test]
fn smp_is_clean_and_deterministic() {
    check_design(DesignId::Smp);
}

#[test]
fn all_designs_are_enumerated() {
    assert_eq!(ALL_DESIGNS.len(), 5, "add a test for the new design");
}
