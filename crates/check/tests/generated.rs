//! Driver for the generated counterexample regression tests.
//!
//! Each module under `generated/` is a minimized model-checker
//! counterexample for one seeded mutation site, rendered as a `#[test]`
//! by `svc-check mutations --emit-tests crates/check/tests/generated`.
//! Against the unmutated implementation every trace must replay cleanly;
//! under its mutation the same trace fails the checker (verified by
//! `mutation_kill.rs`). Regenerate the modules — never hand-edit them —
//! after an intentional protocol change.

#[path = "generated/arb_ignores_shadow.rs"]
mod arb_ignores_shadow;
#[path = "generated/commit_keeps_load_bits.rs"]
mod commit_keeps_load_bits;
#[path = "generated/load_skips_l_bit.rs"]
mod load_skips_l_bit;
#[path = "generated/smp_drop_invalidate.rs"]
mod smp_drop_invalidate;
#[path = "generated/squash_keeps_line.rs"]
mod squash_keeps_line;
#[path = "generated/store_skips_invalidation.rs"]
mod store_skips_invalidation;
#[path = "generated/vol_splice_backwards.rs"]
mod vol_splice_backwards;

/// One generated module per seeded mutation site — a new site without a
/// committed counterexample fails here, not silently.
#[test]
fn every_mutation_site_has_a_generated_test() {
    assert_eq!(svc_types::Mutation::ALL.len(), 7);
}
