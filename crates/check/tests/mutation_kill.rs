//! Mutation-kill verification: every seeded protocol mutation
//! (`SVC_MUTATE=<site>`, see `svc_types::mutate`) must be caught by the
//! model checker, with a minimized counterexample that still fails on
//! replay.
//!
//! `SVC_MUTATE` is read once per process, so each kill runs in a child
//! process: the parent re-executes this test binary with the mutation
//! environment set and an `--exact` filter for the same test, and the
//! child — detecting the active mutation — does the actual exploration.
//! The parent insists on a `MUTATION-CAUGHT` marker in the child's
//! output so a mis-filtered child (zero tests run, exit 0) cannot pass
//! silently.

use std::process::Command;

use svc_check::{design_for_mutation, explore_design, replay_design, Limits};
use svc_types::Mutation;

/// Exploration budget for a mutated child. Every seeded mutation is
/// caught within a few actions (BFS finds it in well under 10k states);
/// the cap only bounds the damage if a future site is NOT caught.
const CHILD_LIMITS: Limits = Limits {
    max_states: 300_000,
};

fn child(site: Mutation, active: Mutation) {
    assert_eq!(active, site, "child spawned with the wrong SVC_MUTATE");
    let design = design_for_mutation(site);
    let out = explore_design(design, &CHILD_LIMITS);
    let cx = out.violation.unwrap_or_else(|| {
        panic!(
            "mutation {} NOT caught on {} within {} states (truncated={})",
            site.key(),
            design.name(),
            out.states,
            out.truncated
        )
    });
    // Minimization must preserve the failure under the mutation.
    let replay = replay_design(design, &cx.script.actions).expect("well-formed counterexample");
    assert!(
        replay.failure.is_some(),
        "{}: minimized counterexample no longer fails under the mutation",
        site.key()
    );
    println!(
        "MUTATION-CAUGHT {} kind={} actions={}",
        site.key(),
        cx.failure.kind.name(),
        cx.script.actions.len()
    );
}

fn parent(site: Mutation, test_name: &str) {
    let exe = std::env::current_exe().expect("test binary path");
    let output = Command::new(exe)
        .args([test_name, "--exact", "--nocapture"])
        .env("SVC_MUTATE", site.key())
        .output()
        .expect("spawn mutated child");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "mutated child for {} failed:\n{stdout}\n{}",
        site.key(),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        stdout.contains(&format!("MUTATION-CAUGHT {}", site.key())),
        "child for {} exited cleanly without catching the mutation:\n{stdout}",
        site.key()
    );
}

fn kill(site: Mutation, test_name: &str) {
    match Mutation::active() {
        Some(active) => child(site, active),
        None => parent(site, test_name),
    }
}

#[test]
fn kills_commit_keeps_load_bits() {
    kill(
        Mutation::CommitKeepsLoadBits,
        "kills_commit_keeps_load_bits",
    );
}

#[test]
fn kills_squash_keeps_line() {
    kill(Mutation::SquashKeepsLine, "kills_squash_keeps_line");
}

#[test]
fn kills_load_skips_l_bit() {
    kill(Mutation::LoadSkipsLBit, "kills_load_skips_l_bit");
}

#[test]
fn kills_store_skips_invalidation() {
    kill(
        Mutation::StoreSkipsInvalidation,
        "kills_store_skips_invalidation",
    );
}

#[test]
fn kills_vol_splice_backwards() {
    kill(Mutation::VolSpliceBackwards, "kills_vol_splice_backwards");
}

#[test]
fn kills_arb_ignores_shadow() {
    kill(Mutation::ArbIgnoresShadow, "kills_arb_ignores_shadow");
}

#[test]
fn kills_smp_drop_invalidate() {
    kill(Mutation::SmpDropInvalidate, "kills_smp_drop_invalidate");
}

/// Adding a mutation site without a kill test above fails here.
#[test]
fn every_site_has_a_kill_test() {
    assert_eq!(
        Mutation::ALL.len(),
        7,
        "add a kills_* test for the new site"
    );
}
