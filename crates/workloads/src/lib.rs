//! Synthetic workload models for the SVC reproduction.
//!
//! The paper evaluates on SPEC95 binaries compiled by the multiscalar gcc
//! and run for 200M instructions (§4.3). Those binaries and that compiler
//! are not available, so — per DESIGN.md substitution 1 — each benchmark
//! is modelled as a *deterministic, seeded task generator* parameterised
//! by the memory-behaviour properties that actually drive the ARB-vs-SVC
//! comparison:
//!
//! * instruction mix and task-size distribution,
//! * working-set size, temporal (hot-set) and spatial (streaming)
//!   locality,
//! * cross-task dependence density and distance (producer→consumer
//!   mailboxes, serializing reductions),
//! * read-only shared data (what the SVC's T bit and snarfing exploit),
//! * cache-conflict patterns (what the ARB's direct-mapped backing cache
//!   is sensitive to),
//! * task-misprediction rate.
//!
//! [`profile::WorkloadProfile`] is the parameter block and
//! [`profile::SyntheticWorkload`] the generator (a
//! [`TaskSource`](svc_multiscalar::TaskSource) usable with the engine);
//! [`spec95`] instantiates the seven benchmarks of the paper's Table 2;
//! [`kernels`] provides small named kernels (streaming, pointer chase,
//! reduction, read-only sharing, producer–consumer, slot revisiting) for
//! examples and ablations; [`trace`] reads and writes a plain-text trace
//! format so external task streams can be run through the simulator.
//!
//! # Example
//!
//! ```
//! use svc_multiscalar::TaskSource;
//! use svc_workloads::spec95::Spec95;
//!
//! let wl = Spec95::Compress.workload(42);
//! let t0 = wl.task(svc_types::TaskId(0)).expect("tasks exist");
//! assert!(!t0.is_empty());
//! // Deterministic: the same task id always yields the same instructions.
//! assert_eq!(t0, wl.task(svc_types::TaskId(0)).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod profile;
pub mod spec95;
pub mod trace;

pub use profile::{SyntheticWorkload, WorkloadProfile};
pub use spec95::Spec95;
pub use trace::{parse_trace, render_trace, ParseTraceError};
