//! The seven SPEC95 benchmark models of the paper's evaluation (§4.3):
//! compress, gcc, vortex, perl, ijpeg, mgrid, apsi.
//!
//! Each model is a [`WorkloadProfile`] whose knobs encode the *memory
//! behaviour* that drives the paper's results for that program — not its
//! computation. The parameters were calibrated (see EXPERIMENTS.md)
//! against the paper's own measurements: Table 2's miss ratios (ARB 32KB
//! vs SVC 4×8KB), Table 3's bus utilizations, and the relative IPCs of
//! Figures 19/20. In brief:
//!
//! * **compress** — dictionary/hash-table read-modify-writes: serializing
//!   reductions and migratory lines; the widest SVC-vs-ARB miss-ratio gap
//!   (replication pressure on the small private caches).
//! * **gcc** — large irregular working set, short tasks, frequent
//!   cross-task dependences and mispredictions; latency-sensitive.
//! * **vortex** — OO-database: large uniform working set with moderate
//!   locality, store-rich transactions.
//! * **perl** — interpreter dispatch tables: hot read-only data plus a
//!   conflict pattern that aliases in the ARB's direct-mapped backing
//!   cache but fits the SVC's 4-way private caches — the one benchmark
//!   where the SVC's miss ratio is *lower* (Table 2).
//! * **ijpeg** — blocked streaming with high spatial locality and a high
//!   compute fraction; the highest IPC.
//! * **mgrid** — large strided stencil sweeps: compulsory-miss dominated,
//!   by far the highest bus utilization (0.747 in Table 3).
//! * **apsi** — mixed FP: medium streams plus a hot shared region.

use crate::profile::{SyntheticWorkload, WorkloadProfile};

/// The SPEC95 benchmarks modelled by this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Spec95 {
    /// 129.compress (train/test.in)
    Compress,
    /// 126.gcc (ref/jump.i)
    Gcc,
    /// 147.vortex (train/vortex.in)
    Vortex,
    /// 134.perl (train/scrabble.pl)
    Perl,
    /// 132.ijpeg (test/specmun.ppm)
    Ijpeg,
    /// 107.mgrid (test/mgrid.in)
    Mgrid,
    /// 141.apsi (train/apsi.in)
    Apsi,
}

impl Spec95 {
    /// All seven benchmarks in the paper's table order.
    pub const ALL: [Spec95; 7] = [
        Spec95::Compress,
        Spec95::Gcc,
        Spec95::Vortex,
        Spec95::Perl,
        Spec95::Ijpeg,
        Spec95::Mgrid,
        Spec95::Apsi,
    ];

    /// The benchmark's name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            Spec95::Compress => "compress",
            Spec95::Gcc => "gcc",
            Spec95::Vortex => "vortex",
            Spec95::Perl => "perl",
            Spec95::Ijpeg => "ijpeg",
            Spec95::Mgrid => "mgrid",
            Spec95::Apsi => "apsi",
        }
    }

    /// The calibrated workload profile.
    pub fn profile(self) -> WorkloadProfile {
        let base = WorkloadProfile {
            name: self.name(),
            num_tasks: 60_000,
            mean_task_len: 28.0,
            load_frac: 0.26,
            store_frac: 0.11,
            long_compute_frac: 0.25,
            hot_frac: 0.80,
            hot_set: 1200,
            fringe_frac: 0.02,
            fringe_set: 4500,
            stream_frac: 0.14,
            stream_extent: 1 << 18,
            stream_advance: 4,
            stream_period: 4,
            stream_window: 16,
            conflict_frac: 0.0,
            conflict_blocks: 4,
            conflict_block: 48,
            conflict_stride: 8192,
            ws_extent: 1 << 16,
            mailbox_frac: 0.10,
            dep_distance: 1,
            mailboxes: 64,
            reduction_frac: 0.01,
            reduction_cells: 4,
            store_shared_frac: 0.05,
            private_spread: 4,
            load_dep_frac: 0.35,
            mispredict_rate: 0.02,
            detect_cycles: 14,
        };
        match self {
            Spec95::Compress => WorkloadProfile {
                mean_task_len: 22.0,
                load_frac: 0.27,
                store_frac: 0.16,
                hot_frac: 0.69,
                hot_set: 1500,
                fringe_frac: 0.04,
                fringe_set: 3600,
                stream_frac: 0.25,
                stream_advance: 4,
                stream_period: 6,
                stream_window: 12,
                ws_extent: 2048,
                mailbox_frac: 0.05,
                reduction_frac: 0.02,
                reduction_cells: 6,
                store_shared_frac: 0.03,
                load_dep_frac: 0.35,
                mispredict_rate: 0.015,
                ..base
            },
            Spec95::Gcc => WorkloadProfile {
                mean_task_len: 18.0,
                load_frac: 0.28,
                store_frac: 0.12,
                hot_frac: 0.824,
                hot_set: 1100,
                fringe_frac: 0.022,
                fringe_set: 3200,
                stream_frac: 0.15,
                stream_advance: 4,
                stream_period: 12,
                ws_extent: 2048,
                mailbox_frac: 0.035,
                dep_distance: 2,
                store_shared_frac: 0.03,
                load_dep_frac: 0.35,
                mispredict_rate: 0.045,
                detect_cycles: 16,
                ..base
            },
            Spec95::Vortex => WorkloadProfile {
                mean_task_len: 26.0,
                load_frac: 0.30,
                store_frac: 0.15,
                hot_frac: 0.812,
                hot_set: 1000,
                fringe_frac: 0.008,
                fringe_set: 3200,
                stream_frac: 0.17,
                stream_advance: 4,
                stream_period: 8,
                ws_extent: 2048,
                mailbox_frac: 0.05,
                store_shared_frac: 0.05,
                load_dep_frac: 0.30,
                mispredict_rate: 0.02,
                ..base
            },
            Spec95::Perl => WorkloadProfile {
                mean_task_len: 24.0,
                load_frac: 0.29,
                store_frac: 0.11,
                hot_frac: 0.83,
                hot_set: 700,
                fringe_frac: 0.002,
                fringe_set: 3000,
                stream_frac: 0.14,
                stream_advance: 4,
                stream_period: 8,
                conflict_frac: 0.016,
                conflict_blocks: 4,
                conflict_block: 48,
                conflict_stride: 8192, // aliases in a 32KB direct-mapped cache
                ws_extent: 2048,
                mailbox_frac: 0.06,
                store_shared_frac: 0.05,
                load_dep_frac: 0.32,
                mispredict_rate: 0.03,
                ..base
            },
            Spec95::Ijpeg => WorkloadProfile {
                mean_task_len: 40.0,
                load_frac: 0.21,
                store_frac: 0.09,
                long_compute_frac: 0.15,
                hot_frac: 0.634,
                hot_set: 500,
                fringe_frac: 0.018,
                fringe_set: 3400,
                stream_frac: 0.34,
                stream_advance: 4,
                stream_period: 12,
                stream_window: 12,
                ws_extent: 2048,
                mailbox_frac: 0.02,
                store_shared_frac: 0.03,
                load_dep_frac: 0.28,
                mispredict_rate: 0.008,
                ..base
            },
            Spec95::Mgrid => WorkloadProfile {
                mean_task_len: 48.0,
                load_frac: 0.42,
                store_frac: 0.12,
                long_compute_frac: 0.30,
                hot_frac: 0.28,
                hot_set: 400,
                fringe_frac: 0.002,
                fringe_set: 3600,
                stream_frac: 0.70,
                stream_extent: 1 << 20,
                stream_advance: 7,
                stream_period: 1,
                stream_window: 120,
                ws_extent: 2048,
                mailbox_frac: 0.015,
                reduction_frac: 0.002,
                store_shared_frac: 0.01,
                load_dep_frac: 0.70,
                mispredict_rate: 0.004,
                ..base
            },
            Spec95::Apsi => WorkloadProfile {
                mean_task_len: 34.0,
                load_frac: 0.27,
                store_frac: 0.11,
                long_compute_frac: 0.30,
                hot_frac: 0.76,
                hot_set: 900,
                fringe_frac: 0.012,
                fringe_set: 3400,
                stream_frac: 0.22,
                stream_advance: 4,
                stream_period: 6,
                stream_window: 20,
                ws_extent: 2048,
                mailbox_frac: 0.04,
                store_shared_frac: 0.05,
                load_dep_frac: 0.40,
                mispredict_rate: 0.012,
                ..base
            },
        }
    }

    /// The ready-to-run workload for this benchmark.
    pub fn workload(self, seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::new(self.profile(), seed)
    }
}

impl core::fmt::Display for Spec95 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use svc_multiscalar::TaskSource;
    use svc_types::TaskId;

    use super::*;

    #[test]
    fn all_benchmarks_generate_tasks() {
        for b in Spec95::ALL {
            let wl = b.workload(1);
            let t = wl.task(TaskId(0)).expect("task 0 exists");
            assert!(!t.is_empty(), "{b}");
            assert_eq!(wl.name(), b.name());
        }
    }

    #[test]
    fn names_match_paper_order() {
        let names: Vec<&str> = Spec95::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["compress", "gcc", "vortex", "perl", "ijpeg", "mgrid", "apsi"]
        );
    }

    #[test]
    fn profiles_are_distinct() {
        for (i, a) in Spec95::ALL.iter().enumerate() {
            for b in &Spec95::ALL[i + 1..] {
                assert_ne!(a.profile(), b.profile(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn only_perl_uses_conflict_blocks() {
        for b in Spec95::ALL {
            let c = b.profile().conflict_frac;
            if b == Spec95::Perl {
                assert!(c > 0.0);
            } else {
                assert_eq!(c, 0.0, "{b}");
            }
        }
    }

    #[test]
    fn mgrid_is_stream_dominated() {
        let p = Spec95::Mgrid.profile();
        assert!(p.stream_frac >= 0.7);
        assert!(p.stream_extent >= 1 << 19, "large footprint");
    }
}
