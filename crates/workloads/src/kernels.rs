//! Small named kernels for examples, ablation benches and tests.
//!
//! Unlike the [`crate::spec95`] models, these isolate a single memory
//! behaviour each, so an ablation can attribute an effect to one
//! mechanism (commit policy, squash policy, snarfing, line size, update
//! protocol).

use svc_multiscalar::{Instr, VecTaskSource};
use svc_sim::rng::Xoshiro256;
use svc_types::{Addr, Word};

/// Streaming sweep: task `i` reads and writes a fresh block of
/// `block` words. Compulsory misses, zero sharing — the base caching
/// cost.
pub fn streaming(tasks: u64, block: u64) -> VecTaskSource {
    let v = (0..tasks)
        .map(|i| {
            let base = i * block;
            let mut t = Vec::new();
            for k in 0..block {
                t.push(Instr::Load(Addr(base + k)));
                t.push(Instr::Compute(0));
                t.push(Instr::Store(Addr(base + k), Word(i + k + 1)));
            }
            t
        })
        .collect();
    VecTaskSource::new(v).with_name("streaming")
}

/// Read-only sharing: every task reads the same `table` words. Exercises
/// reference spreading, the T bit and snarfing.
pub fn readonly_sharing(tasks: u64, table: u64) -> VecTaskSource {
    let v = (0..tasks)
        .map(|i| {
            let mut t = Vec::new();
            for k in 0..table {
                t.push(Instr::Load(Addr(k)));
                if k % 4 == 0 {
                    t.push(Instr::Compute(0));
                }
            }
            t.push(Instr::Store(Addr(1 << 20) + i, Word(i + 1)));
            t
        })
        .collect();
    VecTaskSource::new(v).with_name("readonly-sharing")
}

/// Producer→consumer chain: task `i` loads what task `i-1` stored, early,
/// and stores its own result late. Maximizes memory-dependence
/// violations and squash-replay traffic.
pub fn producer_consumer(tasks: u64, work: usize) -> VecTaskSource {
    let v = (0..tasks)
        .map(|i| {
            let mut t = Vec::new();
            if i > 0 {
                t.push(Instr::Load(Addr(i - 1)));
            }
            t.extend(std::iter::repeat_n(Instr::Compute(1), work));
            t.push(Instr::Store(Addr(i), Word(i + 1)));
            t
        })
        .collect();
    VecTaskSource::new(v).with_name("producer-consumer")
}

/// Migratory reduction: every task read-modify-writes the same cell.
/// Fully serialized; the line migrates cache-to-cache every task.
pub fn reduction(tasks: u64, work: usize) -> VecTaskSource {
    let v = (0..tasks)
        .map(|i| {
            let mut t = vec![Instr::Load(Addr(0))];
            t.extend(std::iter::repeat_n(Instr::Compute(0), work));
            t.push(Instr::Store(Addr(0), Word(i + 1)));
            t
        })
        .collect();
    VecTaskSource::new(v).with_name("reduction")
}

/// False sharing: neighbouring tasks store to *different words of the
/// same 4-word line*. With word-granularity versioning blocks this is
/// harmless; with line-granularity L/S bits it squashes constantly.
pub fn false_sharing(tasks: u64, work: usize) -> VecTaskSource {
    let v = (0..tasks)
        .map(|i| {
            let line = i / 4;
            let word = i % 4;
            let mut t = vec![Instr::Load(Addr(line * 4 + (word + 1) % 4))];
            t.extend(std::iter::repeat_n(Instr::Compute(0), work));
            t.push(Instr::Store(Addr(line * 4 + word), Word(i + 1)));
            t
        })
        .collect();
    VecTaskSource::new(v).with_name("false-sharing")
}

/// Slot revisiting: `slots` cells, each owned by one PU (task-id modulo
/// slots, with round-robin dispatch giving PU affinity). Every task
/// read-modify-writes its own slot (last written by the same PU an epoch
/// ago) and reads a neighbour's slot, whose BusRead flushes that PU's
/// committed version. Whether the flushed line is *retained* (§3.8.1) or
/// purged decides if the owner's next-epoch revisit is a local hit.
pub fn revisit(tasks: u64, slots: u64, work: usize) -> VecTaskSource {
    assert!(slots >= 4, "need enough slots to separate owners");
    let v = (0..tasks)
        .map(|i| {
            let own = i % slots;
            // Last written 5 tasks ago: safely committed (4 PUs), so the
            // read never races the writer.
            let neighbour = (i + slots - 5) % slots;
            let mut t = vec![Instr::Load(Addr(own)), Instr::Load(Addr(neighbour))];
            t.extend(std::iter::repeat_n(Instr::Compute(0), work));
            t.push(Instr::Store(Addr(own), Word(i + 1)));
            t
        })
        .collect();
    VecTaskSource::new(v).with_name("revisit")
}

/// Pointer chase: dependent loads walking a deterministic pseudo-random
/// permutation. Every load's latency is exposed — the most
/// hit-latency-sensitive kernel.
pub fn pointer_chase(tasks: u64, hops: usize, table: u64, seed: u64) -> VecTaskSource {
    // Build a permutation table; tasks chase `hops` steps each, handing
    // the cursor to the next task through a mailbox.
    let mut rng = Xoshiro256::seed_from(seed);
    let mut perm: Vec<u64> = (0..table).collect();
    rng.shuffle(&mut perm);
    let mut cursor = 0u64;
    let v = (0..tasks)
        .map(|i| {
            let mut t = Vec::new();
            for _ in 0..hops {
                t.push(Instr::Load(Addr(cursor)));
                t.push(Instr::Compute(0));
                cursor = perm[cursor as usize];
            }
            t.push(Instr::Store(Addr(1 << 20) + i, Word(cursor + 1)));
            t
        })
        .collect();
    VecTaskSource::new(v).with_name("pointer-chase")
}

/// Tunable-conflict kernel: each task does a few read-modify-write
/// rounds, each hitting a small shared hot set with probability
/// `density` (a cross-task dependence ripe for violation squashes) and a
/// task-private word otherwise. Sweeping `density` in `[0, 1]`
/// interpolates [`streaming`]-like independence into
/// [`producer_consumer`]-like conflict storms — the soak server's
/// randomized variants draw it per slice from a seeded stream.
pub fn conflict_density(tasks: u64, density: f64, seed: u64) -> VecTaskSource {
    const HOT_WORDS: u64 = 4;
    const ROUNDS: u64 = 3;
    let mut rng = Xoshiro256::seed_from(seed);
    let v = (0..tasks)
        .map(|i| {
            let mut t = Vec::new();
            for k in 0..ROUNDS {
                let addr = if rng.gen_bool(density) {
                    Addr(rng.gen_range(0..HOT_WORDS))
                } else {
                    Addr((1 << 16) + i * ROUNDS + k)
                };
                t.push(Instr::Load(addr));
                t.push(Instr::Compute(1));
                t.push(Instr::Store(addr, Word(i + k + 1)));
            }
            t
        })
        .collect();
    VecTaskSource::new(v).with_name("conflict-density")
}

#[cfg(test)]
mod tests {
    use svc_multiscalar::TaskSource;
    use svc_types::TaskId;

    use super::*;

    #[test]
    fn kernels_generate_expected_shapes() {
        assert_eq!(streaming(4, 8).task(TaskId(0)).unwrap().len(), 24);
        assert_eq!(
            readonly_sharing(4, 8).task(TaskId(3)).unwrap().len(),
            8 + 2 + 1
        );
        let pc = producer_consumer(4, 3);
        assert_eq!(pc.task(TaskId(0)).unwrap().len(), 4, "task 0 has no load");
        assert_eq!(pc.task(TaskId(1)).unwrap().len(), 5);
        assert_eq!(reduction(4, 2).task(TaskId(2)).unwrap().len(), 4);
    }

    #[test]
    fn false_sharing_uses_distinct_words_of_one_line() {
        let fs = false_sharing(8, 0);
        for i in 0..4u64 {
            let t = fs.task(TaskId(i)).unwrap();
            let Instr::Store(addr, _) = *t.last().unwrap() else {
                panic!("last is a store");
            };
            assert_eq!(addr.0 / 4, 0, "first four tasks share line 0");
            assert_eq!(addr.0 % 4, i);
        }
    }

    #[test]
    fn pointer_chase_is_deterministic() {
        let a = pointer_chase(10, 4, 256, 9);
        let b = pointer_chase(10, 4, 256, 9);
        for i in 0..10 {
            assert_eq!(a.task(TaskId(i)), b.task(TaskId(i)));
        }
    }

    #[test]
    fn conflict_density_spans_private_to_shared() {
        let a = conflict_density(16, 0.5, 7);
        let b = conflict_density(16, 0.5, 7);
        for i in 0..16 {
            assert_eq!(a.task(TaskId(i)), b.task(TaskId(i)), "seeded determinism");
        }
        let hot = |src: &VecTaskSource| {
            (0..16u64)
                .flat_map(|i| src.task(TaskId(i)).unwrap())
                .filter(|ins| matches!(ins, Instr::Store(a, _) if a.0 < 4))
                .count()
        };
        assert_eq!(hot(&conflict_density(16, 0.0, 7)), 0, "0.0 is all-private");
        assert_eq!(
            hot(&conflict_density(16, 1.0, 7)),
            48,
            "1.0 is all-shared (3 rounds x 16 tasks)"
        );
    }
}
