//! Text trace format: run externally-generated task traces through the
//! simulator, and dump generated workloads for inspection or exchange.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comments and blank lines are ignored
//! task            # starts a new task (tasks are in program order)
//! l 0x40          # load from word address 0x40
//! s 0x41 7        # store value 7 to word address 0x41
//! c 2             # compute occupying 1+2 cycles
//! ```
//!
//! Addresses and values accept decimal or `0x` hex. See
//! [`parse_trace`] and [`render_trace`].

use core::fmt;

use svc_multiscalar::{Instr, TaskSource, VecTaskSource};
use svc_types::{Addr, TaskId, Word};

/// A parse failure, with the 1-based line number it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn parse_num(s: &str, line: usize, what: &str) -> Result<u64, ParseTraceError> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| ParseTraceError {
        line,
        message: format!("invalid {what} {s:?}"),
    })
}

/// Parses a text trace into a [`VecTaskSource`].
///
/// # Errors
///
/// Returns a [`ParseTraceError`] naming the offending line for unknown
/// directives, malformed numbers, instructions before the first `task`,
/// or an empty trace.
pub fn parse_trace(text: &str) -> Result<VecTaskSource, ParseTraceError> {
    let mut tasks: Vec<Vec<Instr>> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut parts = content.split_whitespace();
        let op = parts.next().expect("non-empty line");
        let mut arg = |what: &str| {
            parts.next().ok_or_else(|| ParseTraceError {
                line,
                message: format!("{op:?} needs {what}"),
            })
        };
        let instr = match op {
            "task" => {
                tasks.push(Vec::new());
                continue;
            }
            "l" => Instr::Load(Addr(parse_num(arg("an address")?, line, "address")?)),
            "s" => {
                let a = parse_num(arg("an address")?, line, "address")?;
                let v = parse_num(arg("a value")?, line, "value")?;
                Instr::Store(Addr(a), Word(v))
            }
            "c" => {
                let lat = parse_num(arg("a latency")?, line, "latency")?;
                if lat > u8::MAX as u64 {
                    return Err(ParseTraceError {
                        line,
                        message: format!("compute latency {lat} exceeds 255"),
                    });
                }
                Instr::Compute(lat as u8)
            }
            other => {
                return Err(ParseTraceError {
                    line,
                    message: format!("unknown directive {other:?}"),
                })
            }
        };
        if let Some(extra) = parts.next() {
            return Err(ParseTraceError {
                line,
                message: format!("unexpected trailing token {extra:?}"),
            });
        }
        match tasks.last_mut() {
            Some(t) => t.push(instr),
            None => {
                return Err(ParseTraceError {
                    line,
                    message: "instruction before the first `task`".to_string(),
                })
            }
        }
    }
    if tasks.is_empty() {
        return Err(ParseTraceError {
            line: text.lines().count().max(1),
            message: "trace contains no tasks".to_string(),
        });
    }
    Ok(VecTaskSource::new(tasks).with_name("trace"))
}

/// Renders any [`TaskSource`] in the trace format (the inverse of
/// [`parse_trace`] up to formatting).
pub fn render_trace(source: &dyn TaskSource) -> String {
    let mut out = String::new();
    let mut id = 0u64;
    while let Some(task) = source.task(TaskId(id)) {
        out.push_str("task\n");
        for instr in task {
            match instr {
                Instr::Load(a) => out.push_str(&format!("l {:#x}\n", a.0)),
                Instr::Store(a, v) => out.push_str(&format!("s {:#x} {:#x}\n", a.0, v.0)),
                Instr::Compute(c) => out.push_str(&format!("c {c}\n")),
            }
        }
        id += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use svc_multiscalar::TaskSource as _;

    use super::*;

    const SAMPLE: &str = "\
# a two-task trace
task
l 0x40
c 2
s 0x41 7   # hex addresses, decimal values
task
s 65 0x10
";

    #[test]
    fn parses_sample() {
        let src = parse_trace(SAMPLE).expect("valid trace");
        assert_eq!(src.len(), 2);
        assert_eq!(
            src.task(TaskId(0)).expect("two tasks"),
            vec![
                Instr::Load(Addr(0x40)),
                Instr::Compute(2),
                Instr::Store(Addr(0x41), Word(7)),
            ]
        );
        assert_eq!(
            src.task(TaskId(1)).expect("two tasks"),
            vec![Instr::Store(Addr(65), Word(16))]
        );
    }

    #[test]
    fn round_trips() {
        let src = parse_trace(SAMPLE).expect("valid");
        let text = render_trace(&src);
        let again = parse_trace(&text).expect("rendered trace parses");
        for i in 0..2 {
            assert_eq!(src.task(TaskId(i)), again.task(TaskId(i)));
        }
    }

    #[test]
    fn round_trips_generated_workloads() {
        let wl = crate::Spec95::Gcc.workload(3);
        // Render only a prefix (the generator is large).
        let mut tasks = Vec::new();
        for i in 0..20 {
            tasks.push(wl.task(TaskId(i)).expect("in range"));
        }
        let src = VecTaskSource::new(tasks.clone());
        let again = parse_trace(&render_trace(&src)).expect("parses");
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(again.task(TaskId(i as u64)).as_ref(), Some(t));
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_trace("task\nx 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown directive"));

        let e = parse_trace("l 0x40\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("before the first"));

        let e = parse_trace("task\ns 0x40\n").unwrap_err();
        assert!(e.message.contains("needs a value"));

        let e = parse_trace("task\nl zzz\n").unwrap_err();
        assert!(e.message.contains("invalid address"));

        let e = parse_trace("task\nc 999\n").unwrap_err();
        assert!(e.message.contains("exceeds 255"));

        let e = parse_trace("task\nl 1 2\n").unwrap_err();
        assert!(e.message.contains("trailing"));

        let e = parse_trace("# nothing\n").unwrap_err();
        assert!(e.message.contains("no tasks"));
        assert!(!format!("{e}").is_empty());
    }
}
