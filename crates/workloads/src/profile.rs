//! The parameterised synthetic workload generator.

use svc_multiscalar::{Instr, PredictorModel, TaskSource};
use svc_sim::rng::Xoshiro256;
use svc_types::{Addr, TaskId, Word};

/// Base word addresses of the regions a workload touches. Spread far
/// apart so the regions never alias.
// The offsets added to each power-of-two base stagger the regions in the
// index space of a 32KB direct-mapped cache (8192 words), the way a sane
// program layout does — without them the synthetic regions would alias
// pathologically, which real SPEC95 images do not.
const HOT_BASE: u64 = 0;
const PRIVATE_BASE: u64 = (1 << 25) + 1536;
const MAILBOX_BASE: u64 = (1 << 20) + 2304;
const REDUCTION_BASE: u64 = (1 << 21) + 2400;
const FRINGE_BASE: u64 = (1 << 19) + 2432;
const CONFLICT_BASE: u64 = (1 << 22) + 7760;
const STREAM_BASE: u64 = 1 << 23;
const UNIFORM_BASE: u64 = (1 << 24) + 5680;
const PRIVATE_SLOTS: u64 = 96;

/// The memory-behaviour parameter block of one synthetic benchmark.
///
/// Fractions need not sum to 1: accesses fall through hot → stream →
/// conflict → uniform in that order. See the crate docs for what each
/// knob models and [`crate::spec95`] for the seven instantiations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name for reports.
    pub name: &'static str,
    /// Length of the dynamic task sequence.
    pub num_tasks: u64,
    /// Mean instructions per task (geometric-ish distribution).
    pub mean_task_len: f64,
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction of instructions that are stores.
    pub store_frac: f64,
    /// Fraction of compute instructions with 1 extra cycle of latency
    /// (the rest are single-cycle).
    pub long_compute_frac: f64,

    /// Fraction of accesses to the small hot (mostly read-shared) set.
    pub hot_frac: f64,
    /// Hot-set size in words.
    pub hot_set: u64,
    /// Fraction of accesses to the *fringe* set: sized to fit the shared
    /// 32KB cache but overflow an 8KB private cache — the knob that
    /// produces the SVC-vs-ARB miss-ratio gap of Table 2 (reference
    /// spreading / replication pressure).
    pub fringe_frac: f64,
    /// Fringe-set size in words.
    pub fringe_set: u64,
    /// Fraction of accesses that stream sequentially (spatial locality).
    pub stream_frac: f64,
    /// Total extent of the streamed region in words.
    pub stream_extent: u64,
    /// Words the stream window advances per advance period.
    pub stream_advance: u64,
    /// Tasks per stream advance (larger = more cross-task reuse, fewer
    /// compulsory misses).
    pub stream_period: u64,
    /// Words of the stream visible to one task.
    pub stream_window: u64,
    /// Fraction of accesses to the conflict blocks (aliased in a
    /// direct-mapped cache, fine in a set-associative one).
    pub conflict_frac: f64,
    /// Number of conflict blocks.
    pub conflict_blocks: u64,
    /// Words per conflict block.
    pub conflict_block: u64,
    /// Word stride between conflict blocks (pick a multiple of the
    /// direct-mapped cache's size to force aliasing).
    pub conflict_stride: u64,
    /// Extent of the uniform (low-locality) region in words.
    pub ws_extent: u64,

    /// Probability a task consumes its `dep_distance`-predecessor's
    /// mailbox and produces into its own (true cross-task RAW).
    pub mailbox_frac: f64,
    /// Producer→consumer distance in tasks.
    pub dep_distance: u64,
    /// Number of mailbox cells.
    pub mailboxes: u64,
    /// Probability a task read-modify-writes a shared reduction cell
    /// (serializing RAW chains, frequent violations).
    pub reduction_frac: f64,
    /// Number of reduction cells.
    pub reduction_cells: u64,

    /// Probability a store samples the shared regions like a load does;
    /// the rest go to a rotating per-task private buffer (models the
    /// mostly-private writable data of real programs — unconstrained
    /// shared stores would drown the run in dependence violations).
    pub store_shared_frac: f64,
    /// Words per private store slot (small = stores cluster on few lines).
    pub private_spread: u64,

    /// Fraction of loads whose value feeds the next instruction (exposed
    /// latency); differs by code style — stencil FP kernels chain loads
    /// into arithmetic tightly, integer code has more slack.
    pub load_dep_frac: f64,

    /// Task-misprediction rate of the control-flow predictor model.
    pub mispredict_rate: f64,
    /// Cycles from dispatching a wrong task to detecting it.
    pub detect_cycles: u64,
}

impl WorkloadProfile {
    /// A small, fast, dependence-light profile for tests and examples.
    pub fn demo() -> WorkloadProfile {
        WorkloadProfile {
            name: "demo",
            num_tasks: 200,
            mean_task_len: 24.0,
            load_frac: 0.25,
            store_frac: 0.12,
            long_compute_frac: 0.2,
            hot_frac: 0.5,
            hot_set: 128,
            fringe_frac: 0.02,
            fringe_set: 4096,
            stream_frac: 0.3,
            stream_extent: 16 * 1024,
            stream_advance: 16,
            stream_period: 1,
            stream_window: 32,
            conflict_frac: 0.0,
            conflict_blocks: 1,
            conflict_block: 1,
            conflict_stride: 8192,
            ws_extent: 4 * 1024,
            mailbox_frac: 0.2,
            dep_distance: 1,
            mailboxes: 64,
            reduction_frac: 0.02,
            reduction_cells: 4,
            store_shared_frac: 0.10,
            private_spread: 8,
            load_dep_frac: 0.35,
            mispredict_rate: 0.02,
            detect_cycles: 12,
        }
    }

    /// The predictor model this profile implies.
    pub fn predictor(&self, seed: u64) -> PredictorModel {
        PredictorModel {
            accuracy: 1.0 - self.mispredict_rate,
            detect_cycles: self.detect_cycles,
            seed: seed ^ 0x5EED,
        }
    }
}

/// A deterministic [`TaskSource`] generated from a [`WorkloadProfile`]
/// and a seed. Task `id`'s instructions are a pure function of
/// `(profile, seed, id)`, which is what makes squash-and-replay sound.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    profile: WorkloadProfile,
    seed: u64,
}

impl SyntheticWorkload {
    /// Creates the workload.
    pub fn new(profile: WorkloadProfile, seed: u64) -> SyntheticWorkload {
        SyntheticWorkload { profile, seed }
    }

    /// The profile used.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn sample_addr(&self, rng: &mut Xoshiro256, id: u64) -> Addr {
        let p = &self.profile;
        let mut r = rng.gen_f64();
        if r < p.hot_frac {
            return Addr(HOT_BASE + rng.gen_range(0..p.hot_set.max(1)));
        }
        r -= p.hot_frac;
        if r < p.fringe_frac {
            return Addr(FRINGE_BASE + rng.gen_range(0..p.fringe_set.max(1)));
        }
        r -= p.fringe_frac;
        if r < p.stream_frac {
            let advances = id / p.stream_period.max(1);
            let off = (advances * p.stream_advance + rng.gen_range(0..p.stream_window.max(1)))
                % p.stream_extent.max(1);
            return Addr(STREAM_BASE + off);
        }
        r -= p.stream_frac;
        if r < p.conflict_frac {
            let block = rng.gen_range(0..p.conflict_blocks.max(1));
            let off = rng.gen_range(0..p.conflict_block.max(1));
            return Addr(CONFLICT_BASE + block * p.conflict_stride + off);
        }
        Addr(UNIFORM_BASE + rng.gen_range(0..p.ws_extent.max(1)))
    }
}

impl TaskSource for SyntheticWorkload {
    fn task(&self, id: TaskId) -> Option<Vec<Instr>> {
        let p = &self.profile;
        if id.0 >= p.num_tasks {
            return None;
        }
        let mut rng = Xoshiro256::seed_from(self.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let len = rng.gen_length(p.mean_task_len, (p.mean_task_len * 4.0) as u64 + 2) as usize;
        let mut instrs: Vec<Instr> = Vec::with_capacity(len + 4);
        for k in 0..len {
            let r = rng.gen_f64();
            if r < p.load_frac {
                instrs.push(Instr::Load(self.sample_addr(&mut rng, id.0)));
            } else if r < p.load_frac + p.store_frac {
                let addr = if rng.gen_bool(p.store_shared_frac) {
                    self.sample_addr(&mut rng, id.0)
                } else {
                    // Tasks reuse private slots (stack frames) at a
                    // distance that keeps reuse off the concurrent window
                    // but inside cache lifetimes; with round-robin task
                    // placement the same PU sees the same slot again.
                    let slot = id.0 % PRIVATE_SLOTS;
                    let spread = p.private_spread.max(1);
                    Addr(PRIVATE_BASE + slot * spread + rng.gen_range(0..spread))
                };
                instrs.push(Instr::Store(addr, Word((id.0 << 24) | k as u64)));
            } else {
                let lat = u8::from(rng.gen_bool(p.long_compute_frac));
                instrs.push(Instr::Compute(lat));
            }
        }
        // Cross-task mailbox dependence: consume early, produce late.
        if rng.gen_bool(p.mailbox_frac) && p.mailboxes > 0 {
            if id.0 >= p.dep_distance {
                let from = (id.0 - p.dep_distance) % p.mailboxes;
                instrs.insert(instrs.len().min(1), Instr::Load(Addr(MAILBOX_BASE + from)));
            }
            let to = id.0 % p.mailboxes;
            instrs.push(Instr::Store(Addr(MAILBOX_BASE + to), Word(id.0 + 1)));
        }
        // Serializing reduction: read-modify-write of a shared cell.
        if rng.gen_bool(p.reduction_frac) && p.reduction_cells > 0 {
            let cell = Addr(REDUCTION_BASE + rng.gen_range(0..p.reduction_cells));
            let at = rng.gen_index(0..instrs.len().max(1));
            instrs.insert(at, Instr::Store(cell, Word(id.0 ^ 0xACC)));
            instrs.insert(at, Instr::Load(cell));
        }
        Some(instrs)
    }

    fn name(&self) -> &str {
        self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_tasks() {
        let wl = SyntheticWorkload::new(WorkloadProfile::demo(), 7);
        for i in [0u64, 1, 5, 100, 199] {
            assert_eq!(wl.task(TaskId(i)), wl.task(TaskId(i)), "task {i}");
        }
        assert_eq!(wl.task(TaskId(200)), None);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticWorkload::new(WorkloadProfile::demo(), 1);
        let b = SyntheticWorkload::new(WorkloadProfile::demo(), 2);
        assert_ne!(a.task(TaskId(0)), b.task(TaskId(0)));
    }

    #[test]
    fn instruction_mix_roughly_matches_profile() {
        let wl = SyntheticWorkload::new(WorkloadProfile::demo(), 3);
        let mut loads = 0usize;
        let mut stores = 0usize;
        let mut total = 0usize;
        for i in 0..200 {
            for ins in wl.task(TaskId(i)).expect("in range") {
                total += 1;
                match ins {
                    Instr::Load(_) => loads += 1,
                    Instr::Store(_, _) => stores += 1,
                    Instr::Compute(_) => {}
                }
            }
        }
        let lf = loads as f64 / total as f64;
        let sf = stores as f64 / total as f64;
        assert!((lf - 0.27).abs() < 0.06, "load fraction {lf}");
        assert!((sf - 0.13).abs() < 0.05, "store fraction {sf}");
    }

    #[test]
    fn regions_do_not_alias() {
        // Generate a lot of addresses and check region bases partition them.
        let wl = SyntheticWorkload::new(WorkloadProfile::demo(), 5);
        for i in 0..50 {
            for ins in wl.task(TaskId(i)).expect("in range") {
                let a = match ins {
                    Instr::Load(a) => a,
                    Instr::Store(a, _) => a,
                    _ => continue,
                };
                let ok = a.0 < WorkloadProfile::demo().hot_set
                    || (FRINGE_BASE..FRINGE_BASE + 8192).contains(&a.0)
                    || (MAILBOX_BASE..MAILBOX_BASE + 64).contains(&a.0)
                    || (REDUCTION_BASE..REDUCTION_BASE + 4).contains(&a.0)
                    || (STREAM_BASE..STREAM_BASE + (1 << 20)).contains(&a.0)
                    || (UNIFORM_BASE..UNIFORM_BASE + (1 << 20)).contains(&a.0)
                    || (PRIVATE_BASE..PRIVATE_BASE + (1 << 20)).contains(&a.0);
                assert!(ok, "address {a} outside every region");
            }
        }
    }

    #[test]
    fn predictor_from_profile() {
        let p = WorkloadProfile::demo().predictor(9);
        assert!((p.accuracy - 0.98).abs() < 1e-12);
        assert_eq!(p.detect_cycles, 12);
    }

    #[test]
    fn mean_length_tracks_parameter() {
        let mut profile = WorkloadProfile::demo();
        profile.mean_task_len = 40.0;
        profile.num_tasks = 2000;
        let wl = SyntheticWorkload::new(profile, 11);
        let total: usize = (0..2000)
            .map(|i| wl.task(TaskId(i)).expect("in range").len())
            .sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 40.0).abs() < 4.0, "mean task length {mean}");
    }
}
